// Minimal ASCII table / CSV writer used by the benchmark harnesses to print
// paper-style result tables (one row per series point).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hybrids::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision. Rendered with a header rule, suitable for terminals
/// and for diffing bench outputs across runs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell/add_num calls fill it.
  Table& new_row();
  Table& add_cell(std::string value);
  Table& add_num(double value, int precision = 2);
  Table& add_int(long long value);

  /// Number of completed or in-progress rows.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders with padded columns and a header separator.
  void print(std::ostream& os) const;
  /// Renders as RFC-4180-ish CSV (no quoting of commas; our cells have none).
  void print_csv(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hybrids::util
