#include "hybrids/util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hybrids::util {

int Histogram::bucket_for(double value) {
  if (value <= 0.0) return 0;
  // Bucket i covers [2^(i-1), 2^i); bucket 0 covers [0, 1).
  int b = static_cast<int>(std::ceil(std::log2(value))) + 1;
  return std::clamp(b, 0, kBuckets - 1);
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<std::size_t>(bucket_for(value))];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
}

Histogram Histogram::delta_since(const Histogram& prev) const {
  Histogram d;
  if (count_ <= prev.count_) return d;  // nothing new (or instrument reset)
  for (int i = 0; i < kBuckets; ++i) {
    const auto b = static_cast<std::size_t>(i);
    if (buckets_[b] < prev.buckets_[b]) return Histogram{};  // reset mid-run
    d.buckets_[b] = buckets_[b] - prev.buckets_[b];
  }
  d.count_ = count_ - prev.count_;
  d.sum_ = sum_ - prev.sum_;
  d.min_ = min_;  // run-wide range: tightest bound available (see header)
  d.max_ = max_;
  return d;
}

double Histogram::bucket_upper(int i) {
  return i <= 0 ? 1.0 : std::pow(2.0, i);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  // NaN compares false against everything, so std::clamp would pass it
  // through and the target cast below would be undefined; pin it first.
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The bucket walk approximates from upper edges; for the exact endpoint
  // we track max() precisely, so return it directly (a single-bucket
  // distribution would otherwise report the bucket edge, not the sample).
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen > target) {
      // Upper edge of bucket i, clamped to the observed range.
      return std::clamp(bucket_upper(i), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " p50~" << quantile(0.5) << " p99~" << quantile(0.99)
     << " p99.9~" << quantile(0.999) << " max=" << max();
  return os.str();
}

}  // namespace hybrids::util
