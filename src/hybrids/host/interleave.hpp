// Coroutine-interleaved host traversals (docs/INTERLEAVING.md).
//
// A host thread's leg of an operation alternates between two kinds of dead
// time: LLC misses on pointer-chasing descents (skiplist towers, B+ inner
// nodes) and the publication-slot round-trip to the partition's combiner.
// The async ticket machinery (PartitionSet::call_async) only overlaps the
// NMP side; this layer overlaps both by running k operations per host
// thread as C++20 coroutines multiplexed on one stack:
//
//   * `prefetch_and_yield(addr)` — issue a software prefetch for the next
//     node and suspend, letting a sibling operation run while the line is
//     in flight (the hpides tree_simulation / "Skiplists with Foresight"
//     miss-hiding pattern).
//   * `suspend_until_done(set, handle)` — park a traversal across the
//     publication-slot wait instead of spinning; the frame resumes another
//     in-flight op meanwhile and falls back to the runtime's existing
//     bounded futex wait (NmpCore::wait_done_for) when every slot is
//     parked.
//
// The scheduler is deliberately tiny: a `Frame` of up to kMaxSlots lazily
// started `CoTask` coroutines, resumed round-robin, with no cross-thread
// hand-off — a coroutine is created, resumed, and destroyed on one thread,
// so thread-local state (EBR pins, trace rings, RNGs) behaves exactly as in
// the blocking paths. Everything here compiles out under
// HYBRIDS_NO_INTERLEAVE (only the depth-knob stubs remain), and the
// blocking entry points of the data structures never touch this layer.
//
// EBR interaction (mem/ebr.hpp): holding an EbrGuard across a
// `prefetch_and_yield` suspension is safe — the sibling coroutines run on
// the same thread and the guard is reentrant, so the epoch merely stays
// pinned a little longer. The data-structure `_co` ops close their guards
// before posting, so a coroutine parked in `suspend_until_done` never holds
// a pin; when the frame drains to parked-only ops (the only state that
// blocks in a futex), no guard is live. See docs/INTERLEAVING.md.
#pragma once

#include <atomic>
#include <cstdint>

#include "hybrids/mem/memlayer.hpp"

namespace hybrids::host {

#if defined(HYBRIDS_NO_INTERLEAVE)

/// Compile-time switch the benches/tests consult: when the interleave layer
/// is compiled out the `_co` entry points do not exist and the depth knob
/// pins to 1.
inline constexpr bool kInterleaveCompiledIn = false;

inline std::uint32_t interleave_depth() noexcept { return 1; }
inline void set_interleave_depth(std::uint32_t) noexcept {}

#else  // !HYBRIDS_NO_INTERLEAVE

inline constexpr bool kInterleaveCompiledIn = true;

/// Process-wide default frame depth (number of coroutine slots a
/// default-constructed Frame gets). Same runtime-toggle idiom as the memory
/// layer's prefetch/arena switches: relaxed atomic, consulted at Frame
/// construction, never mid-run.
inline std::atomic<std::uint32_t>& interleave_depth_flag() noexcept {
  static std::atomic<std::uint32_t> depth{4};
  return depth;
}

inline std::uint32_t interleave_depth() noexcept {
  return interleave_depth_flag().load(std::memory_order_relaxed);
}

inline void set_interleave_depth(std::uint32_t k) noexcept {
  interleave_depth_flag().store(k == 0 ? 1 : k, std::memory_order_relaxed);
}

#endif  // HYBRIDS_NO_INTERLEAVE

}  // namespace hybrids::host

#if !defined(HYBRIDS_NO_INTERLEAVE)

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "hybrids/nmp/partition_set.hpp"

namespace hybrids::host {

namespace detail {

/// Promise plumbing shared by CoTask<T> and CoTask<void>. Same shape as the
/// simulator's sim::Task (sim/core/task.hpp) — lazy start, symmetric
/// transfer to the stored continuation on completion — except that
/// exceptions are captured and rethrown at the awaiter/collection point
/// instead of terminating: a host traversal that throws must unwind its
/// frame slot, not the process (the sim has no exceptions to propagate).
struct CoPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      std::coroutine_handle<> cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started host coroutine. Move-only owner of the coroutine frame;
/// awaitable from another CoTask (symmetric transfer, no scheduler round
/// trip for nested descents like LfSkipList::find_co inside
/// HybridSkipList::read_co). The top-level owner submits `handle()` to a
/// Frame and reads `result()` once `done()`.
template <typename T = void>
class [[nodiscard]] CoTask {
 public:
  struct promise_type : detail::CoPromiseBase {
    T value{};
    CoTask get_return_object() {
      return CoTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  CoTask() = default;
  CoTask(CoTask&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~CoTask() { destroy(); }

  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> handle() const noexcept { return h_; }

  /// Result after completion (Frame::drain or done()==true). Rethrows any
  /// exception the coroutine body escaped with.
  T result() {
    assert(h_ && h_.done());
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(h_.promise().value);
  }

  // Awaitable-from-a-CoTask: start the child inline, resume the parent when
  // it completes (FinalAwaiter), rethrow into the parent on failure.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(h_.promise().value);
  }

 private:
  explicit CoTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] CoTask<void> {
 public:
  struct promise_type : detail::CoPromiseBase {
    CoTask get_return_object() {
      return CoTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  CoTask() = default;
  CoTask(CoTask&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  CoTask& operator=(CoTask&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~CoTask() { destroy(); }

  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> handle() const noexcept { return h_; }

  void result() {
    assert(h_ && h_.done());
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  explicit CoTask(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

/// Per-thread scheduler for up to kMaxSlots in-flight operations. The Frame
/// does NOT own the coroutine frames — the caller keeps the CoTask objects
/// (for results and destruction) and submits raw handles; a slot empties
/// when its top-level coroutine runs to completion (including by
/// exception). Not thread-safe: one Frame per thread, like the publication
/// slots themselves.
class Frame {
 public:
  static constexpr std::uint32_t kMaxSlots = 16;

  /// `slots` is clamped to [1, kMaxSlots]; defaults to the process-wide
  /// depth knob.
  explicit Frame(std::uint32_t slots = interleave_depth());
  ~Frame();

  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint32_t inflight() const noexcept { return inflight_; }
  bool has_capacity() const noexcept { return inflight_ < capacity_; }
  bool empty() const noexcept { return inflight_ == 0; }

  /// Adopt a lazily-started coroutine into a free slot. Returns false when
  /// the frame is full (or `top` is null). The coroutine is first resumed
  /// by the next step()/drain().
  bool submit(std::coroutine_handle<> top);

  /// Make one scheduling decision: resume the next runnable slot
  /// (round-robin), or — when every in-flight op is parked on a publication
  /// slot — fall back to the runtime's bounded futex wait on one of them,
  /// then re-poll. Returns false only when the frame is empty.
  bool step();

  /// step() until every submitted coroutine has completed.
  void drain() {
    while (step()) {
    }
  }

  // -- awaiter hooks (called with this frame active on this thread) --
  void note_yield(std::coroutine_handle<> h);
  void note_wait(std::coroutine_handle<> h, nmp::PartitionSet* set,
                 nmp::OpHandle handle);

 private:
  enum class SlotState : std::uint8_t { kEmpty, kReady, kWaiting };

  struct Slot {
    std::coroutine_handle<> top{};     // for done() detection; not owned
    std::coroutine_handle<> resume{};  // innermost suspended coroutine
    SlotState state = SlotState::kEmpty;
    nmp::PartitionSet* set = nullptr;  // valid while state == kWaiting
    nmp::OpHandle wait{};
  };

  void resume_slot(std::uint32_t i);

  Slot slots_[kMaxSlots];
  std::uint32_t capacity_;
  std::uint32_t inflight_ = 0;
  std::uint32_t cursor_ = 0;
};

namespace detail {

/// The frame currently driving this thread plus the slot being resumed.
/// Set around every Frame::resume_slot so the awaiters need no arguments
/// threaded through the data-structure coroutines.
struct ActiveFrame {
  Frame* frame = nullptr;
  std::uint32_t slot = 0;
};

inline ActiveFrame& active_frame() noexcept {
  static thread_local ActiveFrame active;
  return active;
}

}  // namespace detail

/// Awaitable: issue a software prefetch for `addr` (`bytes` ≤ 64 uses a
/// single-line hint, larger objects prefetch every line) and yield to a
/// sibling operation while the line(s) travel. Degrades to prefetch-only —
/// no suspension — when no Frame is driving this thread or when this is the
/// frame's only in-flight op (nothing to overlap with, so depth-1 runs
/// match the blocking paths instruction-for-instruction after the
/// await_ready check).
struct PrefetchAndYield {
  const void* addr;
  std::size_t bytes;

  bool await_ready() const noexcept {
    if (bytes <= 64) {
      mem::prefetch_read(addr);
    } else {
      mem::prefetch_object(addr, bytes);
    }
    const detail::ActiveFrame& a = detail::active_frame();
    return a.frame == nullptr || a.frame->inflight() <= 1;
  }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    detail::active_frame().frame->note_yield(h);
  }
  void await_resume() const noexcept {}
};

inline PrefetchAndYield prefetch_and_yield(const void* addr,
                                           std::size_t bytes = 64) noexcept {
  return {addr, bytes};
}

/// Awaitable: park this operation until the async publication slot behind
/// `handle` reaches kDone, resuming sibling operations meanwhile. Degrades
/// to a no-op (the caller's subsequent PartitionSet::retrieve blocks on the
/// existing futex path) when no Frame is active, the op is the frame's only
/// in-flight one, or the slot is already done.
struct SuspendUntilDone {
  nmp::PartitionSet* set;
  nmp::OpHandle handle;

  bool await_ready() const noexcept {
    const detail::ActiveFrame& a = detail::active_frame();
    return a.frame == nullptr || a.frame->inflight() <= 1 ||
           set->poll(handle);
  }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    detail::active_frame().frame->note_wait(h, set, handle);
  }
  void await_resume() const noexcept {}
};

inline SuspendUntilDone suspend_until_done(nmp::PartitionSet& set,
                                           const nmp::OpHandle& h) noexcept {
  return {&set, h};
}

}  // namespace hybrids::host

#endif  // !HYBRIDS_NO_INTERLEAVE
