// Scheduler TU for the coroutine-interleaved host traversals
// (host/interleave.hpp). Kept out of the header so the round-robin policy,
// the futex-fallback path, and the telemetry registrations have exactly one
// home.
#include "hybrids/host/interleave.hpp"

#if !defined(HYBRIDS_NO_INTERLEAVE)

#include <chrono>

#include "hybrids/telemetry/registry.hpp"

namespace hybrids::host {

namespace {

namespace tn = telemetry::names;

telemetry::LatencyRecorder& depth_recorder() {
  static telemetry::LatencyRecorder& r = telemetry::latency(tn::kInterleaveDepth);
  return r;
}

telemetry::Counter& yields_counter() {
  static telemetry::Counter& c = telemetry::counter(tn::kInterleaveYields);
  return c;
}

telemetry::Counter& fallback_counter() {
  static telemetry::Counter& c =
      telemetry::counter(tn::kInterleaveFallbackWaits);
  return c;
}

// Window for the drained-frame futex fallback. The combiner answers in
// microseconds when healthy; the bound only matters when it is parked, dead,
// or fenced mid-wait — wait_done_for re-kicks and re-checks on expiry
// (lost-wakeup recovery), and step() re-polls every parked slot afterwards
// so a completion on a *different* slot is picked up at most one window
// late.
constexpr std::chrono::nanoseconds kFallbackWaitWindow =
    std::chrono::milliseconds(1);

}  // namespace

Frame::Frame(std::uint32_t slots)
    : capacity_(slots == 0 ? 1 : (slots > kMaxSlots ? kMaxSlots : slots)) {}

Frame::~Frame() {
  // Slots do not own their coroutines (the caller's CoTask objects do), so
  // an abandoned frame leaks nothing — but abandoning in-flight NMP ops
  // would orphan publication slots, so flag it in debug builds.
  assert(inflight_ == 0 && "Frame destroyed with operations in flight");
}

bool Frame::submit(std::coroutine_handle<> top) {
  if (!top || inflight_ >= capacity_) return false;
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    Slot& s = slots_[i];
    if (s.state != SlotState::kEmpty) continue;
    s.top = top;
    s.resume = top;
    s.state = SlotState::kReady;
    ++inflight_;
    depth_recorder().record(static_cast<double>(inflight_));
    return true;
  }
  return false;
}

void Frame::note_yield(std::coroutine_handle<> h) {
  Slot& s = slots_[detail::active_frame().slot];
  s.resume = h;
  s.state = SlotState::kReady;
  yields_counter().inc();
}

void Frame::note_wait(std::coroutine_handle<> h, nmp::PartitionSet* set,
                      nmp::OpHandle handle) {
  Slot& s = slots_[detail::active_frame().slot];
  s.resume = h;
  s.state = SlotState::kWaiting;
  s.set = set;
  s.wait = handle;
  yields_counter().inc();
}

void Frame::resume_slot(std::uint32_t i) {
  Slot& s = slots_[i];
  std::coroutine_handle<> h = s.resume;
  s.resume = {};
  s.state = SlotState::kReady;  // awaiters overwrite on suspension
  s.set = nullptr;

  detail::ActiveFrame& active = detail::active_frame();
  const detail::ActiveFrame prev = active;
  active = {this, i};
  h.resume();
  active = prev;

  if (s.top.done()) {
    s = Slot{};
    --inflight_;
  }
}

bool Frame::step() {
  if (inflight_ == 0) return false;

  // One round-robin pass: resume the first slot that is ready to run or
  // whose publication slot completed while it was parked.
  for (std::uint32_t k = 0; k < capacity_; ++k) {
    const std::uint32_t i = (cursor_ + k) % capacity_;
    Slot& s = slots_[i];
    if (s.state == SlotState::kReady ||
        (s.state == SlotState::kWaiting && s.set->poll(s.wait))) {
      cursor_ = (i + 1) % capacity_;
      resume_slot(i);
      return true;
    }
  }

  // Frame drained: every in-flight op is parked on a publication slot. Fall
  // back to the runtime's bounded futex wait on the next parked slot in
  // round-robin order, then let the caller's next step() re-poll them all.
  for (std::uint32_t k = 0; k < capacity_; ++k) {
    const std::uint32_t i = (cursor_ + k) % capacity_;
    Slot& s = slots_[i];
    if (s.state != SlotState::kWaiting) continue;
    fallback_counter().inc();
    s.set->core(s.wait.partition).wait_done_for(s.wait.slot,
                                                kFallbackWaitWindow);
    return true;
  }

  // inflight_ > 0 implies at least one kReady/kWaiting slot above.
  assert(false && "Frame::step: in-flight count out of sync with slots");
  return false;
}

}  // namespace hybrids::host

#endif  // !HYBRIDS_NO_INTERLEAVE
