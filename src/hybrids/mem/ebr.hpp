// Minimal epoch-based reclamation (EBR) domain for the host-side lock-free
// structures.
//
// Why it exists: the lock-free skiplist's remove path unlinks a tower and
// pushes it on a Treiber retire stack, but concurrent wait-free traversals
// may still hold references to it, so the tower's memory historically could
// only be freed at destructor time — unbounded growth under churn. EBR gives
// a cheap grace period: a tower retired in epoch `e` can be handed back to
// the node pool once the global epoch has advanced to `e + 2`, because by
// then every critical section that could have obtained a reference has
// exited (the classic three-epoch argument: advancing e -> e+1 requires all
// pinned threads to sit at e; advancing again requires them all at e+1, so
// no section pinned at or before e is still running).
//
// Protocol for participants:
//  - Wrap every window that dereferences host lock-free nodes in an
//    EbrGuard. Guards are reentrant and thread-local; only the outermost one
//    pins (one seq_cst store on entry, one release store on exit).
//  - Never hold a guard across a blocking wait (e.g. an NMP offload): a
//    pinned-but-parked thread stalls reclamation for everyone. Pins are for
//    pointer-chasing windows, not for whole operations.
//  - Retirers stamp Ebr::current() on the node at retire time and test
//    Ebr::safe(stamp) before reuse, calling Ebr::try_advance() to make
//    progress. Threads that never enter guards never block advancement:
//    only records pinned at a stale epoch do.
//
// Thread records are appended to a global intrusive list on first guard use
// and recycled when the owning thread exits (marked free, reused by the next
// new thread), so the list length is bounded by the peak number of
// concurrently live guard-using threads.
#pragma once

#include <atomic>
#include <cstdint>

namespace hybrids::mem {

class Ebr {
 public:
  /// Epochs start at 1; 0 is the quiescent sentinel in thread records.
  static constexpr std::uint64_t kQuiescent = 0;

  struct Rec {
    std::atomic<std::uint64_t> pinned{kQuiescent};
    std::atomic<bool> in_use{true};
    Rec* next = nullptr;   // immutable after publication
    unsigned depth = 0;    // guard nesting; owner thread only
  };

  static std::uint64_t current() noexcept {
    return epoch().load(std::memory_order_acquire);
  }

  /// True when memory retired under `retire_epoch` can no longer be reached
  /// by any guarded traversal.
  static bool safe(std::uint64_t retire_epoch) noexcept {
    return current() >= retire_epoch + 2;
  }

  /// Advance the global epoch if every registered, pinned thread has caught
  /// up with it. Safe to call from any thread at any time; lock-free.
  static void try_advance() noexcept {
    std::uint64_t e = epoch().load(std::memory_order_acquire);
    for (Rec* r = head().load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      if (!r->in_use.load(std::memory_order_acquire)) continue;
      const std::uint64_t p = r->pinned.load(std::memory_order_acquire);
      if (p != kQuiescent && p != e) return;  // someone is still in epoch e-1
    }
    epoch().compare_exchange_strong(e, e + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
  }

  /// The calling thread's record (registered on first use, recycled on
  /// thread exit).
  static Rec* rec() noexcept {
    thread_local Holder holder;
    return holder.rec;
  }

 private:
  struct Holder {
    Rec* rec;
    Holder() : rec(acquire_rec()) {}
    ~Holder() {
      rec->pinned.store(kQuiescent, std::memory_order_release);
      rec->in_use.store(false, std::memory_order_release);
    }
  };

  static std::atomic<std::uint64_t>& epoch() noexcept {
    static std::atomic<std::uint64_t> e{1};
    return e;
  }
  static std::atomic<Rec*>& head() noexcept {
    static std::atomic<Rec*> h{nullptr};
    return h;
  }

  static Rec* acquire_rec() {
    for (Rec* r = head().load(std::memory_order_acquire); r != nullptr;
         r = r->next) {
      bool expected = false;
      if (!r->in_use.load(std::memory_order_acquire) &&
          r->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        r->depth = 0;
        return r;
      }
    }
    Rec* r = new Rec;  // leaked at process exit by design (records are tiny
                       // and must outlive any thread that might scan them)
    Rec* h = head().load(std::memory_order_acquire);
    do {
      r->next = h;
    } while (!head().compare_exchange_weak(h, r, std::memory_order_acq_rel,
                                           std::memory_order_acquire));
    return r;
  }
};

/// RAII pin on the current epoch. Reentrant per thread.
class EbrGuard {
 public:
  EbrGuard() noexcept : rec_(Ebr::rec()) {
    if (rec_->depth++ == 0) {
      // seq_cst: the pin must be globally visible before any shared load in
      // the critical section, so try_advance() on other threads cannot miss
      // an active pin and advance past us.
      rec_->pinned.store(Ebr::current(), std::memory_order_seq_cst);
    }
  }
  ~EbrGuard() {
    if (--rec_->depth == 0) {
      rec_->pinned.store(Ebr::kQuiescent, std::memory_order_release);
    }
  }
  EbrGuard(const EbrGuard&) = delete;
  EbrGuard& operator=(const EbrGuard&) = delete;

 private:
  Ebr::Rec* rec_;
};

}  // namespace hybrids::mem
