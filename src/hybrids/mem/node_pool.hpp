// Sharded slab pool for host-side nodes (HostBNode, lock-free skiplist
// towers).
//
// Unlike the NMP partitions, host nodes are allocated and freed by many
// threads at once, so the pool stripes its state across cache-aligned
// shards: a thread hashes to a home shard (telemetry's stable thread
// ordinal), try-locks it, and falls over to the next shard — counting a
// `mem.pool_shard_misses` — only under contention. Each shard owns bump
// chunks plus per-size-class freelists; a freelist hit counts
// `mem.pool_recycled`.
//
// Reclamation contract: the pool itself imposes no grace period — callers
// must only deallocate() memory that is provably unreachable (HostBNodes are
// never freed before the tree's destructor; lock-free towers go through the
// EBR grace period in mem/ebr.hpp first). Chunk memory is released to the
// OS only by the pool destructor, so even a racy late read of a recycled
// tower touches mapped memory; correctness of such windows is EBR's job.
//
// With -DHYBRIDS_NO_ARENA, or when mem::arena_enabled() was false at pool
// construction, every call passes through to aligned operator new/delete.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "hybrids/mem/arena.hpp"
#include "hybrids/mem/memlayer.hpp"
#include "hybrids/telemetry/counters.hpp"
#include "hybrids/telemetry/registry.hpp"
#include "hybrids/util/cache_aligned.hpp"

namespace hybrids::mem {

class NodePool {
 public:
  static constexpr std::size_t kShards = 8;

  NodePool()
      : enabled_(arena_enabled()),
        arena_bytes_(&telemetry::counter(telemetry::names::kMemArenaBytes)),
        recycled_(&telemetry::counter(telemetry::names::kMemPoolRecycled)),
        shard_misses_(
            &telemetry::counter(telemetry::names::kMemPoolShardMisses)) {}

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  ~NodePool() {
    for (Shard& s : shards_) {
      for (void* c : s.chunks) {
        ::operator delete(c, std::align_val_t{kMemAlign});
        debug::live_chunks().fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  /// 64-byte-aligned block of at least `bytes`. Thread-safe.
  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (!enabled_ || cls >= kMemClasses) {
      return ::operator new(bytes, std::align_val_t{kMemAlign});
    }
    Shard& s = lock_a_shard();
    void* p = s.free[cls];
    if (p != nullptr) {
      s.free[cls] = *static_cast<void**>(p);
      s.unlock();
      recycled_->inc();
      return p;
    }
    const std::size_t want = (cls + 1) * kMemAlign;
    if (static_cast<std::size_t>(s.bump_end - s.bump) < want) {
      char* chunk = static_cast<char*>(
          ::operator new(kMemChunkBytes, std::align_val_t{kMemAlign}));
      s.chunks.push_back(chunk);
      debug::live_chunks().fetch_add(1, std::memory_order_relaxed);
      arena_bytes_->add(kMemChunkBytes);
      s.bump = chunk;
      s.bump_end = chunk + kMemChunkBytes;
    }
    p = s.bump;
    s.bump += want;
    s.unlock();
    return p;
  }

  /// Return a block for reuse; `bytes` must match the allocation request.
  /// Thread-safe. See the reclamation contract above.
  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = size_class(bytes);
    if (!enabled_ || cls >= kMemClasses) {
      ::operator delete(p, std::align_val_t{kMemAlign});
      return;
    }
    Shard& s = lock_a_shard();
    *static_cast<void**>(p) = s.free[cls];
    s.free[cls] = p;
    s.unlock();
  }

  bool enabled() const noexcept { return enabled_; }

  /// Quiescent-only test hook.
  std::size_t chunk_count() noexcept {
    std::size_t n = 0;
    for (Shard& s : shards_) {
      s.lock();
      n += s.chunks.size();
      s.unlock();
    }
    return n;
  }

 private:
  struct alignas(util::kCacheLineSize) Shard {
    std::atomic<bool> locked{false};
    char* bump = nullptr;
    char* bump_end = nullptr;
    void* free[kMemClasses] = {};
    std::vector<void*> chunks;

    bool try_lock() noexcept {
      return !locked.load(std::memory_order_relaxed) &&
             !locked.exchange(true, std::memory_order_acquire);
    }
    void lock() noexcept {
      while (locked.exchange(true, std::memory_order_acquire)) {
      }
    }
    void unlock() noexcept { locked.store(false, std::memory_order_release); }
  };

  /// Locks the home shard if free, else probes the others (counting one
  /// shard miss), else spins on home. Returns the locked shard.
  Shard& lock_a_shard() noexcept {
    const std::size_t home = telemetry::this_thread_ordinal() % kShards;
    if (shards_[home].try_lock()) return shards_[home];
    shard_misses_->inc();
    for (std::size_t i = 1; i < kShards; ++i) {
      Shard& s = shards_[(home + i) % kShards];
      if (s.try_lock()) return s;
    }
    shards_[home].lock();
    return shards_[home];
  }

  const bool enabled_;
  telemetry::Counter* arena_bytes_;
  telemetry::Counter* recycled_;
  telemetry::Counter* shard_misses_;
  Shard shards_[kShards];
};

}  // namespace hybrids::mem
