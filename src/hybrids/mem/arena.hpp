// Per-partition bump+freelist arena for NMP-side nodes (§3.3's cache
// consciousness applied to our own heap).
//
// Each SeqSkipList / NmpBTree partition is single-owner: only its NMP
// combiner thread ever mutates it, so its arena needs NO synchronization.
// Nodes are carved from contiguous 64-byte-aligned chunks (bump allocation:
// a partition's working set packs into few pages instead of scattering
// across the heap), and freed nodes are recycled through per-size-class
// freelists, so delete-less retire paths (skiplist remove/promote) stop
// leaking for the lifetime of the structure.
//
// Ownership rule (see docs/ARCHITECTURE.md §memory-layer): every allocate()
// and deallocate() on a PartitionArena must come from the thread that owns
// the partition — for the runtime structures, the partition's combiner
// thread (construction and destruction are quiescent and may run anywhere).
//
// Size classes are multiples of 64 bytes up to 1KB; larger blocks (none of
// the runtime node types need one) fall through to aligned operator new.
// With -DHYBRIDS_NO_ARENA, or when mem::arena_enabled() was false at
// construction, every call is a passthrough to aligned operator new/delete,
// preserving the alignment guarantee so callers never care which mode is on.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "hybrids/mem/memlayer.hpp"
#include "hybrids/telemetry/registry.hpp"

namespace hybrids::mem {

namespace debug {
/// Process-wide count of live arena/pool chunks; lets tests assert that
/// destroying a partition releases everything it reserved.
inline std::atomic<std::int64_t>& live_chunks() noexcept {
  static std::atomic<std::int64_t> n{0};
  return n;
}
}  // namespace debug

inline constexpr std::size_t kMemAlign = 64;
inline constexpr std::size_t kMemClasses = 16;  // 64, 128, ..., 1024 bytes
inline constexpr std::size_t kMemChunkBytes = 256 * 1024;

/// Size class index for a request, or kMemClasses if it must fall through to
/// operator new. Class c serves blocks of (c+1)*64 bytes.
inline std::size_t size_class(std::size_t bytes) noexcept {
  return (bytes + kMemAlign - 1) / kMemAlign - 1;
}

class PartitionArena {
 public:
  PartitionArena()
      : enabled_(arena_enabled()),
        arena_bytes_(&telemetry::counter(telemetry::names::kMemArenaBytes)) {}

  PartitionArena(const PartitionArena&) = delete;
  PartitionArena& operator=(const PartitionArena&) = delete;

  ~PartitionArena() {
    for (void* c : chunks_) {
      ::operator delete(c, std::align_val_t{kMemAlign});
      debug::live_chunks().fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// 64-byte-aligned block of at least `bytes`. Owner thread only.
  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (!enabled_ || cls >= kMemClasses) {
      return ::operator new(bytes, std::align_val_t{kMemAlign});
    }
    if (void* p = free_[cls]) {
      free_[cls] = *static_cast<void**>(p);
      ++recycled_;
      return p;
    }
    const std::size_t want = (cls + 1) * kMemAlign;
    if (static_cast<std::size_t>(bump_end_ - bump_) < want) {
      char* chunk = static_cast<char*>(
          ::operator new(kMemChunkBytes, std::align_val_t{kMemAlign}));
      chunks_.push_back(chunk);
      debug::live_chunks().fetch_add(1, std::memory_order_relaxed);
      arena_bytes_->add(kMemChunkBytes);
      bump_ = chunk;
      bump_end_ = chunk + kMemChunkBytes;
    }
    void* p = bump_;
    bump_ += want;
    return p;
  }

  /// Return a block for reuse. `bytes` must match the allocation request.
  /// Owner thread only.
  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = size_class(bytes);
    if (!enabled_ || cls >= kMemClasses) {
      ::operator delete(p, std::align_val_t{kMemAlign});
      return;
    }
    *static_cast<void**>(p) = free_[cls];
    free_[cls] = p;
  }

  bool enabled() const noexcept { return enabled_; }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }
  std::size_t bytes_reserved() const noexcept {
    return chunks_.size() * kMemChunkBytes;
  }
  /// Allocations served by popping a freelist (recycle hits). Owner thread.
  std::uint64_t recycled() const noexcept { return recycled_; }

 private:
  const bool enabled_;
  telemetry::Counter* arena_bytes_;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  void* free_[kMemClasses] = {};  // intrusive: block's first word = next
  std::uint64_t recycled_ = 0;
  std::vector<void*> chunks_;
};

}  // namespace hybrids::mem
