// Memory-layer switches: one compile-time kill per mechanism (so ablations
// against a build without the code are honest) plus one runtime toggle per
// mechanism (so one binary can sweep arena-on/off × prefetch-on/off, as
// bench/ablate_memlayer.cpp does).
//
// The runtime toggles are process-global and read-mostly:
//  - set_arena_enabled() is consulted ONCE, when an arena or pool is
//    constructed; every allocation of that instance then follows the captured
//    decision, so allocate/deallocate stay symmetric even if the flag flips
//    mid-run. Flip it only between structure lifetimes.
//  - prefetch_enabled() is consulted per prefetch site (a relaxed load of a
//    read-mostly cache line; the branch predicts perfectly in a sweep arm).
//
// Compiling with -DHYBRIDS_NO_ARENA / -DHYBRIDS_NO_PREFETCH pins the
// corresponding toggle to false with a constexpr, which dead-codes the arena
// fast paths / the __builtin_prefetch calls entirely.
#pragma once

#include <atomic>
#include <cstddef>

namespace hybrids::mem {

#if defined(HYBRIDS_NO_ARENA)
inline constexpr bool kArenaCompiledIn = false;
inline bool arena_enabled() noexcept { return false; }
inline void set_arena_enabled(bool) noexcept {}
#else
inline constexpr bool kArenaCompiledIn = true;
inline std::atomic<bool>& arena_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline bool arena_enabled() noexcept {
  return arena_flag().load(std::memory_order_relaxed);
}
inline void set_arena_enabled(bool on) noexcept {
  arena_flag().store(on, std::memory_order_relaxed);
}
#endif

#if defined(HYBRIDS_NO_PREFETCH)
inline constexpr bool kPrefetchCompiledIn = false;
inline bool prefetch_enabled() noexcept { return false; }
inline void set_prefetch_enabled(bool) noexcept {}
inline void prefetch_read(const void*) noexcept {}
inline void prefetch_object(const void*, std::size_t) noexcept {}
#else
inline constexpr bool kPrefetchCompiledIn = true;
inline std::atomic<bool>& prefetch_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
inline bool prefetch_enabled() noexcept {
  return prefetch_flag().load(std::memory_order_relaxed);
}
inline void set_prefetch_enabled(bool on) noexcept {
  prefetch_flag().store(on, std::memory_order_relaxed);
}
/// Hint the line at `p` into cache for a read. Safe on any address, including
/// null and pointers to freed-but-mapped memory — prefetch never faults.
inline void prefetch_read(const void* p) noexcept {
  if (p != nullptr && prefetch_enabled()) {
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
  }
}
/// Hint every cache line of a `bytes`-sized object at `p` (the pB+-tree
/// pattern: a multi-line node's later lines stream in behind the demand load
/// of its first, so a key scan across the node never stalls per line).
inline void prefetch_object(const void* p, std::size_t bytes) noexcept {
  if (p == nullptr || !prefetch_enabled()) return;
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/3);
  }
}
#endif

}  // namespace hybrids::mem
