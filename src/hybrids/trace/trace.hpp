// Sampled operation tracing with per-phase latency attribution.
//
// Telemetry (telemetry/) answers "how much, in aggregate"; this layer
// answers "where inside one operation the time went". A configurable 1-in-N
// sample of operations is traced end to end across the offload lifecycle:
//
//   host thread                      combiner / NMP partition
//   -----------                      ------------------------
//   kOp ──────────────────────────────────────────────────────┐ (whole op)
//     kHostDescend  host-portion traversal                    │
//     kPublish      writing the publication slot + kPending   │
//                   kQueueWait  kPending -> combiner pickup   │
//                   kBatchSort  key-sorting a combiner batch  │
//                   kApply      partition handler execution   │
//                   kReply      response write + kDone + wake │
//     kWake         kDone -> host resumes                     │
//     kScanChunk    one stitched kScan chunk (wraps the above)│
//     kRetry        instant: host re-posted after a retry ────┘
//
// Recording is a push into a per-thread fixed-capacity ring buffer (one
// plain Event store + a release tail bump; no locks, no allocation). Rings
// overwrite oldest on overflow and count what they dropped. Sampling is
// deterministic given (--trace-sample N, seed, thread ordinal), so repeated
// runs trace the same operations. Cross-thread attribution rides the
// publication protocol itself: the sampled op's id travels in
// `Request::trace_id`, and the combiner's completion timestamp travels back
// in `PubSlot::done_ns` / `SimSlot::done_at` (plain stores sequenced before
// the kDone release store, like every other slot field).
//
// The whole layer compiles out under HYBRIDS_NO_TRACE, and also under
// HYBRIDS_NO_TELEMETRY (it depends on telemetry's clock and thread
// ordinals): every function below becomes an empty inline and instrumented
// call sites dead-code behind `tok.sampled()` / `trace_id == 0` checks. With
// tracing compiled in but the sample rate at 0 (the default), begin_op() is
// a single relaxed atomic load.
//
// Export: trace/export.hpp turns a drained trace into Chrome trace-event
// JSON (chrome://tracing, https://ui.perfetto.dev) and a per-phase latency
// breakdown table. See docs/TRACING.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hybrids/telemetry/counters.hpp"

namespace hybrids::trace {

#if defined(HYBRIDS_NO_TRACE) || defined(HYBRIDS_NO_TELEMETRY)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Lifecycle phases of one (possibly offloaded) operation. kOp is the
/// enclosing span; every other span phase nests inside it. kRetry,
/// kFailover, and kCacheLookup are instant markers, not spans (kFailover:
/// the op was bounced off a fenced partition and will re-route through the
/// retry machinery; kCacheLookup: the op hit the host-side hot-key cache —
/// a value hit ends the op right there, a shortcut hit skips the host
/// descent). Keep phase_name() in sync.
enum class Phase : std::uint8_t {
  kOp = 0,
  kHostDescend,
  kPublish,
  kQueueWait,
  kBatchSort,
  kApply,
  kReply,
  kWake,
  kScanChunk,
  kRetry,
  kFailover,
  kCacheLookup,
};
inline constexpr int kPhaseCount = static_cast<int>(Phase::kCacheLookup) + 1;

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kOp: return "op";
    case Phase::kHostDescend: return "host_descend";
    case Phase::kPublish: return "publish";
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kBatchSort: return "batch_sort";
    case Phase::kApply: return "apply";
    case Phase::kReply: return "reply";
    case Phase::kWake: return "wake";
    case Phase::kScanChunk: return "scan_chunk";
    case Phase::kRetry: return "retry";
    case Phase::kFailover: return "failover";
    case Phase::kCacheLookup: return "cache_lookup";
  }
  return "?";
}

/// Event flags.
inline constexpr std::uint8_t kFlagInstant = 0x1;    // point event, dur_ns = 0
inline constexpr std::uint8_t kFlagOffloaded = 0x2;  // on kOp: op left the host

/// One trace record. Timestamps are nanoseconds: wall-clock
/// (telemetry::now_ns) on the real runtime, simulated time
/// (time_base() + ticks_to_ns) under the cycle simulator.
struct Event {
  std::uint64_t op_id = 0;     // sampled-operation id (begin_op), never 0
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;    // 0 for instants
  std::uint32_t track = 0;     // display track (host thread / combiner)
  std::int16_t partition = -1; // NMP partition, -1 when host-only/unknown
  Phase phase = Phase::kOp;
  std::uint8_t op = 0;         // nmp::OpCode when known
  std::uint8_t flags = 0;
};

/// Display track for a partition's combiner lane (host threads use their
/// telemetry ordinal, which stays far below this).
inline constexpr std::uint32_t kCombinerTrackBase = 1000;
/// record_* track argument meaning "the calling thread's own track".
inline constexpr std::uint32_t kTrackSelf = 0xFFFFFFFFu;

/// Deterministic 1-in-N sampler. The first fire happens after a
/// seed/stream-dependent offset (splitmix64 of seed ^ stream, mod N) so
/// threads don't sample in lockstep; afterwards every N-th call fires.
/// Always compiled (standalone-testable) — only the global recording API
/// below is subject to the compile-out.
class Sampler {
 public:
  Sampler() = default;
  Sampler(std::uint64_t seed, std::uint64_t stream, std::uint32_t every) {
    reseed(seed, stream);
    set_every(every);
  }

  void reseed(std::uint64_t seed, std::uint64_t stream) {
    state_ = mix(seed ^ (stream + 1) * 0x9E3779B97F4A7C15ull);
  }

  /// n == 0 disables the sampler (fire() always false).
  void set_every(std::uint32_t n) {
    every_ = n;
    state_ = mix(state_);
    skip_ = n ? state_ % n : 0;
  }
  std::uint32_t every() const { return every_; }

  /// True on the ops to trace: deterministic for a given (seed, stream,
  /// every) across runs.
  bool fire() {
    if (every_ == 0) return false;
    if (skip_ > 0) {
      --skip_;
      return false;
    }
    skip_ = every_ - 1;
    return true;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint64_t state_ = 0;
  std::uint64_t skip_ = 0;
  std::uint32_t every_ = 0;
};

/// Fixed-capacity single-writer ring that overwrites oldest on overflow
/// (late events — notably the enclosing kOp spans, recorded at op end —
/// survive; what was overwritten is counted as dropped). The owning thread
/// pushes; snapshot()/clear() are for quiescent readers (after joins).
/// Always compiled, like Sampler.
class Ring {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;  // events/thread

  explicit Ring(std::size_t capacity = kDefaultCapacity)
      : buf_(capacity ? capacity : 1) {}

  void push(const Event& e) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    buf_[static_cast<std::size_t>(t % buf_.size())] = e;
    // Release so a quiescent drainer that acquires the tail sees the slot
    // contents written above.
    tail_.store(t + 1, std::memory_order_release);
  }

  std::uint64_t pushed() const {
    return tail_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const {
    const std::uint64_t t = pushed();
    return t < buf_.size() ? static_cast<std::size_t>(t) : buf_.size();
  }
  std::uint64_t dropped() const {
    const std::uint64_t t = pushed();
    return t > buf_.size() ? t - buf_.size() : 0;
  }

  /// Oldest-first copy of the retained events. Quiescent-only.
  std::vector<Event> snapshot() const {
    const std::uint64_t t = pushed();
    const std::size_t n = size();
    std::vector<Event> out;
    out.reserve(n);
    // Oldest retained event is at push index t - n.
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(buf_[static_cast<std::size_t>((t - n + i) % buf_.size())]);
    }
    return out;
  }

  /// Quiescent-only.
  void clear() { tail_.store(0, std::memory_order_release); }

 private:
  std::vector<Event> buf_;
  std::atomic<std::uint64_t> tail_{0};
};

/// Handle for one sampled operation: id 0 means "not sampled" and every
/// record call keyed by it no-ops. begin_ns is the op's start timestamp.
struct OpToken {
  std::uint64_t id = 0;
  std::uint64_t begin_ns = 0;
  bool sampled() const { return id != 0; }
};

/// Everything drained from the per-thread rings, oldest-first.
struct TraceData {
  std::vector<Event> events;
  std::uint64_t dropped = 0;      // overwritten ring entries, all threads
  std::uint64_t sampled_ops = 0;  // ops begin_op() elected to trace
};

#if defined(HYBRIDS_NO_TRACE) || defined(HYBRIDS_NO_TELEMETRY)

// Compiled out: the API keeps its shape so call sites and benches build
// unchanged; everything is an empty inline and tokens never sample.
inline void set_sample_every(std::uint32_t) {}
inline std::uint32_t sample_every() { return 0; }
inline void set_sample_seed(std::uint64_t) {}
inline void set_ring_capacity(std::size_t) {}
inline OpToken begin_op() { return {}; }
inline OpToken begin_op_at(std::uint64_t) { return {}; }
inline void record_span(std::uint64_t, Phase, std::uint64_t, std::uint64_t,
                        std::uint8_t = 0, std::int16_t = -1,
                        std::uint8_t = 0, std::uint32_t = kTrackSelf) {}
inline void record_instant(std::uint64_t, Phase, std::uint64_t,
                           std::uint8_t = 0, std::int16_t = -1,
                           std::uint32_t = kTrackSelf) {}
inline void end_op(const OpToken&, std::uint64_t, std::uint8_t = 0,
                   std::int16_t = -1, bool = false,
                   std::uint32_t = kTrackSelf) {}
inline std::uint64_t time_base() { return 0; }
inline void advance_time_base(std::uint64_t) {}
inline TraceData drain() { return {}; }
inline void reset() {}

#else  // tracing compiled in

/// Trace 1 in `n` operations; 0 (the default) disables sampling. Runtime-
/// settable; takes effect at each thread's next begin_op().
void set_sample_every(std::uint32_t n);
std::uint32_t sample_every();

/// Seed for the deterministic samplers (mixed with each thread's ordinal).
void set_sample_seed(std::uint64_t seed);

/// Per-thread ring capacity, in events; applies to rings created afterwards
/// (configure before the workload threads first record).
void set_ring_capacity(std::size_t events);

/// Sampling decision for one operation. Returns an unsampled token unless
/// this op is elected (1 in sample_every()). begin_op() stamps
/// telemetry::now_ns(); begin_op_at() lets the simulator supply its own
/// clock (time_base() + ticks_to_ns).
OpToken begin_op();
OpToken begin_op_at(std::uint64_t now_ns);

/// Record a [start_ns, end_ns] span for a sampled op into the calling
/// thread's ring. No-op when op_id == 0, so call sites need no branch.
/// `track` defaults to the calling thread's lane; combiners pass
/// kCombinerTrackBase + partition.
void record_span(std::uint64_t op_id, Phase phase, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint8_t op = 0,
                 std::int16_t partition = -1, std::uint8_t flags = 0,
                 std::uint32_t track = kTrackSelf);

/// Point event (e.g. kRetry). No-op when op_id == 0.
void record_instant(std::uint64_t op_id, Phase phase, std::uint64_t at_ns,
                    std::uint8_t op = 0, std::int16_t partition = -1,
                    std::uint32_t track = kTrackSelf);

/// Close the enclosing kOp span for a sampled op. `offloaded` marks ops
/// that actually left the host (the phase-coverage denominator).
void end_op(const OpToken& tok, std::uint64_t end_ns, std::uint8_t op = 0,
            std::int16_t partition = -1, bool offloaded = false,
            std::uint32_t track = kTrackSelf);

/// Monotonic offset added to simulator timestamps so consecutive sim runs
/// (each restarting at tick 0) don't overlap in the exported trace.
/// advance_time_base() raises it to at least `to_at_least` (call it with
/// the previous run's base + final sim time).
std::uint64_t time_base();
void advance_time_base(std::uint64_t to_at_least);

/// Collect every thread's retained events (oldest-first across threads) and
/// overflow counts. Quiescent-only: call after worker threads joined. Also
/// folds the overflow delta into the `trace.dropped_events` counter.
TraceData drain();

/// Clear all rings and restart op ids / the time base. Quiescent-only
/// (tests and multi-run benches).
void reset();

#endif  // compile-out

}  // namespace hybrids::trace
