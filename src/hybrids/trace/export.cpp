#include "hybrids/trace/export.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "hybrids/nmp/publication.hpp"

namespace hybrids::trace {

namespace {

/// Microseconds with ns precision — the trace-event format's `ts`/`dur`
/// unit is microseconds but fractional values are accepted by both
/// chrome://tracing and Perfetto.
void append_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

void append_common(std::ostringstream& os, const Event& e) {
  os << "\"pid\":1,\"tid\":" << e.track << ",\"ts\":";
  append_us(os, e.start_ns);
  os << ",\"name\":\"" << phase_name(e.phase) << "\",\"cat\":\"hybrids\"";
}

void append_args(std::ostringstream& os, const Event& e) {
  os << ",\"args\":{\"op_id\":" << e.op_id << ",\"op\":\""
     << nmp::op_code_name(static_cast<nmp::OpCode>(e.op))
     << "\",\"partition\":" << e.partition;
  if (e.phase == Phase::kOp) {
    os << ",\"offloaded\":" << ((e.flags & kFlagOffloaded) ? 1 : 0);
  }
  os << '}';
}

std::string track_name(std::uint32_t track) {
  if (track >= kCombinerTrackBase) {
    return "combiner-p" + std::to_string(track - kCombinerTrackBase);
  }
  return "host-" + std::to_string(track);
}

}  // namespace

std::string to_chrome_json(const TraceData& data) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Metadata: name each track so Perfetto shows "host-N" / "combiner-pP"
  // lanes instead of bare tids.
  std::set<std::uint32_t> tracks;
  for (const Event& e : data.events) tracks.insert(e.track);
  for (std::uint32_t t : tracks) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << track_name(t)
       << "\"}}";
  }
  for (const Event& e : data.events) {
    if (!first) os << ',';
    first = false;
    if (e.flags & kFlagInstant) {
      os << "{\"ph\":\"i\",";
      append_common(os, e);
      os << ",\"s\":\"t\"";  // thread-scoped instant
    } else {
      os << "{\"ph\":\"X\",";
      append_common(os, e);
      os << ",\"dur\":";
      append_us(os, e.dur_ns);
    }
    append_args(os, e);
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
        "\"schema\":\"hybrids.trace.v1\",\"sampled_ops\":"
     << data.sampled_ops << ",\"dropped_events\":" << data.dropped << "}}";
  return os.str();
}

bool write_chrome_json(const std::string& path, const TraceData& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_chrome_json(data) << '\n';
  return static_cast<bool>(out.flush());
}

Breakdown breakdown(const TraceData& data) {
  Breakdown b;
  std::unordered_set<std::uint64_t> offloaded;
  for (const Event& e : data.events) {
    if (e.flags & kFlagInstant) {
      b.phases[static_cast<std::size_t>(e.phase)].count++;
      continue;
    }
    PhaseStat& ps = b.phases[static_cast<std::size_t>(e.phase)];
    ps.count++;
    ps.total_ns += e.dur_ns;
    if (e.phase == Phase::kOp && (e.flags & kFlagOffloaded)) {
      b.offloaded_ops++;
      b.offloaded_op_ns += e.dur_ns;
      offloaded.insert(e.op_id);
    }
  }
  for (const Event& e : data.events) {
    // Leaf phases only: kOp encloses everything, kScanChunk encloses the
    // per-chunk descend/publish/wake, kRetry is an instant.
    if (e.phase == Phase::kOp || e.phase == Phase::kScanChunk ||
        (e.flags & kFlagInstant)) {
      continue;
    }
    if (offloaded.count(e.op_id)) b.attributed_ns += e.dur_ns;
  }
  return b;
}

std::string breakdown_table(const Breakdown& b) {
  std::ostringstream os;
  os << "[trace] per-phase latency breakdown (sampled ops)\n";
  os << "[trace]   phase         count      total_us     mean_ns\n";
  for (int i = 0; i < kPhaseCount; ++i) {
    const PhaseStat& ps = b.phases[static_cast<std::size_t>(i)];
    if (ps.count == 0) continue;
    const char* name = phase_name(static_cast<Phase>(i));
    os << "[trace]   ";
    os << name;
    for (std::size_t pad = std::char_traits<char>::length(name); pad < 14;
         ++pad) {
      os << ' ';
    }
    std::ostringstream count_col, total_col;
    count_col << ps.count;
    total_col << ps.total_ns / 1000 << '.' << (ps.total_ns / 100) % 10;
    for (std::size_t pad = count_col.str().size(); pad < 9; ++pad) os << ' ';
    os << count_col.str();
    for (std::size_t pad = total_col.str().size(); pad < 14; ++pad) os << ' ';
    os << total_col.str();
    std::ostringstream mean_col;
    mean_col << (ps.count ? ps.total_ns / ps.count : 0);
    for (std::size_t pad = mean_col.str().size(); pad < 12; ++pad) os << ' ';
    os << mean_col.str() << '\n';
  }
  os << "[trace] offloaded ops sampled: " << b.offloaded_ops
     << ", phase coverage of offloaded-op latency: ";
  os.precision(1);
  os << std::fixed << b.coverage() * 100.0 << "%";
  return os.str();
}

}  // namespace hybrids::trace
