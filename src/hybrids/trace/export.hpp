// Exporters for drained traces (trace.hpp):
//
//  * Chrome trace-event JSON (object form, schema "hybrids.trace.v1") that
//    loads in chrome://tracing and https://ui.perfetto.dev — one timeline
//    track per host thread plus one per partition combiner, complete ("X")
//    events per phase span, instant ("i") events for retries;
//  * a per-phase latency breakdown: per-phase count / total / mean, plus a
//    coverage figure — the fraction of sampled *offloaded* operation time
//    (kOp spans flagged kFlagOffloaded) that the leaf phases account for.
//    Leaf phases exclude kOp itself and kScanChunk, which structurally
//    enclose other phases.
//
// See docs/TRACING.md for the phase model and how to read a trace.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "hybrids/trace/trace.hpp"

namespace hybrids::trace {

/// JSON for the whole trace; Chrome trace-event "object" form with
/// `traceEvents` plus dropped/sampled totals under `otherData`.
std::string to_chrome_json(const TraceData& data);

/// to_chrome_json to a file. Returns false if the file cannot be written.
bool write_chrome_json(const std::string& path, const TraceData& data);

struct PhaseStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Aggregated per-phase statistics over one drained trace.
struct Breakdown {
  std::array<PhaseStat, kPhaseCount> phases{};  // indexed by Phase
  std::uint64_t offloaded_ops = 0;  // kOp spans flagged kFlagOffloaded
  std::uint64_t offloaded_op_ns = 0;
  std::uint64_t attributed_ns = 0;  // leaf-phase time inside those ops

  /// Fraction of sampled offloaded-op latency the leaf phases explain.
  /// Phases recorded on both sides of a boundary may overlap slightly, so
  /// values can exceed 1; 0 when no offloaded op was sampled.
  double coverage() const {
    return offloaded_op_ns
               ? static_cast<double>(attributed_ns) /
                     static_cast<double>(offloaded_op_ns)
               : 0.0;
  }
};

Breakdown breakdown(const TraceData& data);

/// Human-readable table of a Breakdown (the end-of-run stderr report).
std::string breakdown_table(const Breakdown& b);

}  // namespace hybrids::trace
