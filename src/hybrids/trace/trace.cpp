#include "hybrids/trace/trace.hpp"

#if !defined(HYBRIDS_NO_TRACE) && !defined(HYBRIDS_NO_TELEMETRY)

#include <algorithm>
#include <memory>
#include <mutex>

#include "hybrids/telemetry/registry.hpp"

namespace hybrids::trace {

namespace {

// Runtime configuration. Bumping the epoch makes every thread re-derive its
// sampler (seed, stride) at its next begin_op, so set_sample_* are safe to
// call between runs without touching other threads' state.
std::atomic<std::uint32_t> g_every{0};
std::atomic<std::uint64_t> g_seed{0x48794272694453ull};  // "HyBriDS"
std::atomic<std::uint64_t> g_epoch{1};
std::atomic<std::uint64_t> g_next_op{0};
std::atomic<std::uint64_t> g_time_base{0};
std::atomic<std::size_t> g_ring_capacity{Ring::kDefaultCapacity};

/// One per recording thread, owned by the process-lifetime registry below
/// (threads come and go; rings must survive until drain()).
struct ThreadRec {
  explicit ThreadRec(std::size_t cap) : ring(cap) {}
  Ring ring;
  Sampler sampler;
  std::uint64_t epoch = 0;
};

struct RecRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRec>> recs;
  std::uint64_t dropped_reported = 0;  // already folded into the counter
};

RecRegistry& registry() {
  static RecRegistry* r = new RecRegistry();  // never freed: threads may
  return *r;                                  // record during static dtors
}

ThreadRec& local_rec() {
  thread_local ThreadRec* rec = [] {
    auto owned = std::make_unique<ThreadRec>(
        g_ring_capacity.load(std::memory_order_relaxed));
    ThreadRec* raw = owned.get();
    RecRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.recs.push_back(std::move(owned));
    return raw;
  }();
  return *rec;
}

telemetry::Counter& sampled_counter() {
  static telemetry::Counter* c =
      &telemetry::counter(telemetry::names::kTraceSampledOps);
  return *c;
}

telemetry::Counter& dropped_counter() {
  static telemetry::Counter* c =
      &telemetry::counter(telemetry::names::kTraceDroppedEvents);
  return *c;
}

}  // namespace

void set_sample_every(std::uint32_t n) {
  g_every.store(n, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t sample_every() {
  return g_every.load(std::memory_order_relaxed);
}

void set_sample_seed(std::uint64_t seed) {
  g_seed.store(seed, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

void set_ring_capacity(std::size_t events) {
  g_ring_capacity.store(events ? events : 1, std::memory_order_relaxed);
}

OpToken begin_op_at(std::uint64_t now_ns) {
  const std::uint32_t every = g_every.load(std::memory_order_relaxed);
  if (every == 0) return {};
  ThreadRec& rec = local_rec();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
  if (rec.epoch != epoch) {
    rec.epoch = epoch;
    rec.sampler.reseed(g_seed.load(std::memory_order_relaxed),
                       telemetry::this_thread_ordinal());
    rec.sampler.set_every(every);
  }
  if (!rec.sampler.fire()) return {};
  OpToken tok;
  tok.id = g_next_op.fetch_add(1, std::memory_order_relaxed) + 1;
  tok.begin_ns = now_ns;
  sampled_counter().inc();
  return tok;
}

OpToken begin_op() { return begin_op_at(telemetry::now_ns()); }

void record_span(std::uint64_t op_id, Phase phase, std::uint64_t start_ns,
                 std::uint64_t end_ns, std::uint8_t op, std::int16_t partition,
                 std::uint8_t flags, std::uint32_t track) {
  if (op_id == 0) return;
  Event e;
  e.op_id = op_id;
  e.start_ns = start_ns;
  e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  e.track = track == kTrackSelf ? telemetry::this_thread_ordinal() : track;
  e.partition = partition;
  e.phase = phase;
  e.op = op;
  e.flags = flags;
  local_rec().ring.push(e);
}

void record_instant(std::uint64_t op_id, Phase phase, std::uint64_t at_ns,
                    std::uint8_t op, std::int16_t partition,
                    std::uint32_t track) {
  record_span(op_id, phase, at_ns, at_ns, op, partition, kFlagInstant, track);
}

void end_op(const OpToken& tok, std::uint64_t end_ns, std::uint8_t op,
            std::int16_t partition, bool offloaded, std::uint32_t track) {
  record_span(tok.id, Phase::kOp, tok.begin_ns, end_ns, op, partition,
              offloaded ? kFlagOffloaded : std::uint8_t{0}, track);
}

std::uint64_t time_base() {
  return g_time_base.load(std::memory_order_relaxed);
}

void advance_time_base(std::uint64_t to_at_least) {
  std::uint64_t cur = g_time_base.load(std::memory_order_relaxed);
  while (cur < to_at_least &&
         !g_time_base.compare_exchange_weak(cur, to_at_least,
                                            std::memory_order_relaxed)) {
  }
}

TraceData drain() {
  TraceData out;
  RecRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t dropped = 0;
  for (const auto& rec : reg.recs) {
    std::vector<Event> events = rec->ring.snapshot();
    out.events.insert(out.events.end(), events.begin(), events.end());
    dropped += rec->ring.dropped();
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_ns < b.start_ns;
                   });
  out.dropped = dropped;
  out.sampled_ops = g_next_op.load(std::memory_order_relaxed);
  if (dropped > reg.dropped_reported) {
    dropped_counter().add(dropped - reg.dropped_reported);
    reg.dropped_reported = dropped;
  }
  return out;
}

void reset() {
  RecRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& rec : reg.recs) rec->ring.clear();
  reg.dropped_reported = 0;
  g_next_op.store(0, std::memory_order_relaxed);
  g_time_base.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hybrids::trace

#endif  // compiled in
