// Closed-loop controller for the hot-key cache split and the host-managed
// split (ext_adaptive_skew's online mode).
//
// Two knobs, one decision rule each, both behind the watchdog-style
// anti-flap hysteresis from the partition supervisor: a knob only moves
// after `hysteresis` CONSECUTIVE observation windows agree on the
// direction, each move is one bounded step, and the position is clamped to
// [min, max]. A single noisy window therefore never moves a knob, and the
// worst-case excursion between two converged positions is one step.
//
//  * value/shortcut ratio — compares the two tiers' measured benefit per
//    budget byte. A value hit saves the whole operation (host descent +
//    partition round-trip); a shortcut hit saves only the host descent.
//    Each window: benefit_per_byte(tier) = hits × saved_ns / tier_bytes;
//    whichever tier earns more per byte (beyond a relative deadband) pulls
//    the ratio its way.
//
//  * host-managed split (promote budget) — driven by the per-partition
//    queue-wait share (trace.queue_wait_ns vs trace.service_ns, the same
//    signal ext_adaptive_skew already reads). Queue-bound partitions
//    (share above `queue_high`) mean the NMP side is the bottleneck: raise
//    the promote budget so more hot keys become host-mirrored and reads
//    stop crossing. Service-bound or idle (share below `queue_low`) means
//    host levels are pure overhead for this workload: lower it. The
//    high/low gap is itself a hysteresis band.
//
// The controller is pure logic over explicit Sample structs — no telemetry
// reads, no threads — so tests can drive synthetic skew shifts directly;
// ext_adaptive_skew owns the sampling loop and applies the outputs via
// HotCache::set_value_ratio() and the structures' promote-budget setter.
#pragma once

#include <algorithm>
#include <cstdint>

namespace hybrids::cache {

class SplitController {
 public:
  struct Config {
    // value/shortcut ratio knob
    double ratio = 0.5;
    double ratio_step = 0.05;
    double ratio_min = 0.1;
    double ratio_max = 0.9;
    double deadband = 0.15;  // relative benefit gap ignored as noise
    // host-managed split knob
    std::uint32_t promote_budget = 0;
    std::uint32_t promote_step = 8;
    std::uint32_t promote_min = 0;
    std::uint32_t promote_max = 4096;
    double queue_high = 0.55;  // queue-wait share above → promote more
    double queue_low = 0.25;   // below → promote less
    // anti-flap: consecutive same-direction windows before a move
    int hysteresis = 3;
  };

  /// One observation window, aggregated by the caller from HotCache::stats()
  /// deltas and the trace.queue_wait_ns / trace.service_ns counters.
  struct Sample {
    std::uint64_t value_hits = 0;
    std::uint64_t shortcut_hits = 0;
    std::uint64_t misses = 0;
    double value_save_ns = 0;     // avg ns a value hit saves vs a full miss
    double shortcut_save_ns = 0;  // avg ns a shortcut hit saves (host descent)
    double queue_wait_share = 0;  // queue_wait / (queue_wait + service), [0,1]
  };

  explicit SplitController(const Config& config)
      : cfg_(config),
        ratio_(std::clamp(config.ratio, config.ratio_min, config.ratio_max)),
        promote_(std::clamp(config.promote_budget, config.promote_min,
                            config.promote_max)) {}

  /// Feeds one window; returns true if either knob moved.
  bool observe(const Sample& s) {
    bool moved = step_ratio(ratio_direction(s));
    moved = step_promote(promote_direction(s)) || moved;
    return moved;
  }

  double value_ratio() const { return ratio_; }
  std::uint32_t promote_budget() const { return promote_; }
  std::uint64_t ratio_moves() const { return ratio_moves_; }
  std::uint64_t promote_moves() const { return promote_moves_; }
  double ratio_step() const { return cfg_.ratio_step; }

 private:
  /// +1 pulls budget toward the value tier, -1 toward shortcuts, 0 = hold.
  int ratio_direction(const Sample& s) const {
    if (s.value_hits + s.shortcut_hits + s.misses == 0) return 0;
    // Benefit per budget byte; tier byte share is proportional to the ratio.
    const double eps = 1e-6;
    const double value_bpb = static_cast<double>(s.value_hits) *
                             s.value_save_ns / std::max(ratio_, eps);
    const double shortcut_bpb = static_cast<double>(s.shortcut_hits) *
                                s.shortcut_save_ns /
                                std::max(1.0 - ratio_, eps);
    if (value_bpb > shortcut_bpb * (1.0 + cfg_.deadband)) return 1;
    if (shortcut_bpb > value_bpb * (1.0 + cfg_.deadband)) return -1;
    return 0;
  }

  int promote_direction(const Sample& s) const {
    if (s.queue_wait_share > cfg_.queue_high) return 1;
    if (s.queue_wait_share < cfg_.queue_low) return -1;
    return 0;
  }

  bool step_ratio(int dir) {
    if (!advance(ratio_streak_, dir)) return false;
    const double next = std::clamp(ratio_ + cfg_.ratio_step * dir,
                                   cfg_.ratio_min, cfg_.ratio_max);
    if (next == ratio_) return false;
    ratio_ = next;
    ++ratio_moves_;
    return true;
  }

  bool step_promote(int dir) {
    if (!advance(promote_streak_, dir)) return false;
    std::uint32_t next = promote_;
    if (dir > 0) {
      next = std::min(cfg_.promote_max, promote_ + cfg_.promote_step);
    } else if (promote_ > cfg_.promote_min + cfg_.promote_step) {
      next = promote_ - cfg_.promote_step;
    } else {
      next = cfg_.promote_min;
    }
    if (next == promote_) return false;
    promote_ = next;
    ++promote_moves_;
    return true;
  }

  /// Signed streak counter: resets on a direction flip or a hold window,
  /// fires (and re-arms) once `hysteresis` consecutive windows agree.
  static bool fire(int& streak, int dir, int hysteresis) {
    if (dir == 0) {
      streak = 0;
      return false;
    }
    streak = (streak * dir > 0) ? streak + dir : dir;
    if (streak * dir >= hysteresis) {
      streak = 0;
      return true;
    }
    return false;
  }

  bool advance(int& streak, int dir) {
    return fire(streak, dir, cfg_.hysteresis);
  }

  Config cfg_;
  double ratio_;
  std::uint32_t promote_;
  int ratio_streak_ = 0;
  int promote_streak_ = 0;
  std::uint64_t ratio_moves_ = 0;
  std::uint64_t promote_moves_ = 0;
};

}  // namespace hybrids::cache
