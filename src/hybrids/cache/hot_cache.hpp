// Host-side hot-key cache (DINOMO-style hybrid value/shortcut caching).
//
// Zipfian traffic concentrates on a few keys, yet every hybrid-structure
// read still walks the host levels and usually crosses into a partition
// round-trip. This layer short-circuits both, with two tiers under ONE byte
// budget:
//
//  * value tier    — (key, value) pairs served without touching the
//                    structure at all: a hit is a couple of cache lines.
//  * shortcut tier — begin-NMP-traversal references (the partition-local
//                    node/subtree a descent for the key would reach), so a
//                    warm key's offload skips the host-portion descent and
//                    posts directly.
//
// Invalidation mirrors the mem layer's `update_versioned` rule: every entry
// carries the owning partition's monotonic value version (stamped by the
// combiner, the partition's serialization point). A write acknowledgment
// erases the key's entry AND raises the partition's *fill floor* to the
// write's version; fills below the floor are discarded exactly like a stale
// `update_versioned` — this closes the race where a read served before a
// write tries to fill after the write already invalidated. Failover bounces
// raise a per-partition *generation* instead: entries remember the
// generation they were filled under, so no cached value survives a bounced
// partition.
//
// Shortcut safety: targets are only ever nodes the structures never free
// individually — SeqSkipList parks removed tall nodes until destruction and
// NmpBTree's arenas free nothing before teardown — so a stale shortcut is
// always safe to *hand to the combiner*, which detects staleness (marked
// node / parent-seqnum mismatch) and answers retry; the host then erases
// the entry and falls back to a real descent. Host-side shortcut fills
// happen inside the operation's mem::EbrGuard window, like every other
// begin-node derivation.
//
// Concurrency: both tiers are set-associative arrays split into spinlocked
// shards; a lookup, fill, or erase touches exactly one shard. Capacity is
// fixed when a tier is built (resident bytes can never exceed the budget).
// set_budget()/set_value_ratio() build FRESH tiers and publish them with an
// atomic pointer swap; superseded tiers are parked until destruction so
// concurrent readers never chase freed memory (resizes are controller
// knobs, rate-limited by its hysteresis — the parked set stays tiny).
//
// Compile-out: -DHYBRIDS_NO_CACHE pins cache_enabled() to a constexpr
// false (the arena/prefetch convention, mem/memlayer.hpp) — the hybrid
// structures then never construct a HotCache and every integration site
// dead-codes behind its null check.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hybrids/telemetry/registry.hpp"
#include "hybrids/types.hpp"
#include "hybrids/util/cache_aligned.hpp"

namespace hybrids::cache {

#if defined(HYBRIDS_NO_CACHE)
inline constexpr bool kCacheCompiledIn = false;
inline bool cache_enabled() noexcept { return false; }
inline void set_cache_enabled(bool) noexcept {}
#else
inline constexpr bool kCacheCompiledIn = true;
inline std::atomic<bool>& cache_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}
/// Consulted ONCE, when a hybrid structure is constructed (the arena rule:
/// flip only between structure lifetimes, never mid-run).
inline bool cache_enabled() noexcept {
  return cache_flag().load(std::memory_order_relaxed);
}
inline void set_cache_enabled(bool on) noexcept {
  cache_flag().store(on, std::memory_order_relaxed);
}
#endif

class HotCache {
 public:
  struct Config {
    std::size_t budget_bytes = 0;   // both tiers together; 0 = everything misses
    double value_ratio = 0.5;       // fraction of the budget for the value tier
    std::uint32_t partitions = 1;   // per-partition floors/generations
  };

  /// Begin-NMP-traversal reference: the opaque node handle the structure
  /// posts as Request::node, plus structure-specific validation baggage
  /// (the B+tree's offloaded parent seqnum; unused by the skiplists) and
  /// the owning partition (the B+tree routes by tagged pointer, so a
  /// shortcut hit is also what names the target partition).
  struct Shortcut {
    void* node = nullptr;
    std::uint64_t aux = 0;
    std::uint32_t partition = 0;
    // Fat-node host layout: the fat leaf backing `node`, whose seqlock stamp
    // rides in `aux` (HostIndex::shortcut_fresh revalidates the pair before
    // the hit is trusted). Null for layouts whose begin handles never move
    // (pointer-node skiplist, B+tree).
    void* host = nullptr;
  };

  struct Stats {
    std::uint64_t value_hits = 0;
    std::uint64_t shortcut_hits = 0;
    std::uint64_t misses = 0;          // value-tier lookups that missed
    std::uint64_t invalidations = 0;   // erases + rejected stale fills
    std::size_t resident_bytes = 0;    // occupied entry bytes, both tiers
    std::size_t capacity_bytes = 0;    // allocated entry bytes (<= budget)
  };

  explicit HotCache(const Config& config)
      : config_(config),
        budget_bytes_(config.budget_bytes),
        value_ratio_(config.value_ratio) {
    namespace tn = telemetry::names;
    hits_ = &telemetry::counter(tn::kCacheHits);
    misses_ = &telemetry::counter(tn::kCacheMisses);
    invalidations_ = &telemetry::counter(tn::kCacheInvalidations);
    bytes_rec_ = &telemetry::latency(tn::kCacheBytes);
    const std::uint32_t nparts = config.partitions ? config.partitions : 1;
    parts_.reserve(nparts);
    for (std::uint32_t p = 0; p < nparts; ++p) {
      parts_.push_back(std::make_unique<util::CacheAligned<PartitionState>>());
    }
    tiers_.store(build_tiers(config_), std::memory_order_release);
  }

  ~HotCache() { delete tiers_.load(std::memory_order_acquire); }

  HotCache(const HotCache&) = delete;
  HotCache& operator=(const HotCache&) = delete;

  // ----- value tier ---------------------------------------------------------

  /// Serves `out` from the value tier. A hit also refreshes the entry's
  /// clock bit (second-chance eviction). Generation-checked against the
  /// entry's OWN partition (recorded at fill time — the caller may not know
  /// the partition before descending): entries filled before the
  /// partition's last bounce never hit.
  bool lookup_value(Key key, Value& out) {
    Tiers& t = current();
    bool hit = false;
    if (t.value.buckets != 0) {
      Shard& sh = t.value.shard(key);
      LockGuard g(sh.lock);
      ValueEntry* e = find(sh.vslots, sh.buckets, key);
      if (e != nullptr && e->gen == generation(e->partition)) {
        out = e->value;
        e->clock = 1;
        hit = true;
      }
    }
    if (hit) {
      hits_->inc();
      stat_value_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_->inc();
      stat_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return hit;
  }

  /// Installs (key, value) stamped with the partition version the combiner
  /// echoed for the serving operation. Discarded when below the partition's
  /// fill floor (a newer write already invalidated this key's partition) or
  /// when `gen` is no longer current (the partition bounced since the
  /// caller captured it) — the `update_versioned` discard rule.
  void fill_value(Key key, std::uint32_t part, Value value,
                  std::uint64_t version, std::uint64_t gen) {
    Tiers& t = current();
    if (t.value.buckets == 0) return;
    PartitionState& ps = state(part);
    if (version < ps.floor.load(std::memory_order_acquire) ||
        gen != ps.gen.load(std::memory_order_acquire)) {
      note_invalidation();
      return;
    }
    Shard& sh = t.value.shard(key);
    {
      LockGuard g(sh.lock);
      ValueEntry* e = find(sh.vslots, sh.buckets, key);
      if (e == nullptr) {
        e = pick_slot(sh.vslots, sh.buckets, key);
        if (!e->valid) sh.occupied.fetch_add(1, std::memory_order_relaxed);
      } else if (version < e->version) {
        // A racing newer fill for the same key already landed.
        note_invalidation();
        return;
      }
      e->key = key;
      e->value = value;
      e->version = version;
      e->gen = gen;
      e->partition = part;
      e->valid = true;
      e->clock = 1;
    }
    bytes_rec_->record(static_cast<double>(bytes()));
  }

  /// Write-side invalidation: erases the key's cached value and raises the
  /// partition's fill floor to the write's version, so any in-flight stale
  /// fill for this partition is discarded on arrival. Called on every
  /// update/insert/remove acknowledgment BEFORE the operation returns, so
  /// per-thread program order is preserved.
  void invalidate_value(Key key, std::uint32_t part, std::uint64_t version) {
    PartitionState& ps = state(part);
    std::uint64_t cur = ps.floor.load(std::memory_order_relaxed);
    while (cur < version &&
           !ps.floor.compare_exchange_weak(cur, version,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
    }
    Tiers& t = current();
    if (t.value.buckets == 0) return;
    Shard& sh = t.value.shard(key);
    LockGuard g(sh.lock);
    ValueEntry* e = find(sh.vslots, sh.buckets, key);
    if (e != nullptr) {
      e->valid = false;
      sh.occupied.fetch_sub(1, std::memory_order_relaxed);
      note_invalidation();
    }
  }

  // ----- shortcut tier ------------------------------------------------------

  bool lookup_shortcut(Key key, Shortcut& out) {
    Tiers& t = current();
    if (t.shortcut.buckets == 0) return false;
    Shard& sh = t.shortcut.shard(key);
    bool hit = false;
    {
      LockGuard g(sh.lock);
      ShortcutEntry* e = find(sh.sslots, sh.buckets, key);
      if (e != nullptr && e->gen == generation(e->partition)) {
        out.node = e->node;
        out.aux = e->aux;
        out.partition = e->partition;
        out.host = e->host;
        e->clock = 1;
        hit = true;
      }
    }
    if (hit) {
      hits_->inc();
      stat_shortcut_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return hit;
  }

  /// Caller contract: `node` must stay safe to hand to the partition's
  /// combiner for the structure's lifetime (never-freed begin candidates),
  /// and the call must happen inside the EBR window that derived it.
  void fill_shortcut(Key key, std::uint32_t part, void* node,
                     std::uint64_t aux, std::uint64_t gen,
                     void* host = nullptr) {
    Tiers& t = current();
    if (t.shortcut.buckets == 0 || node == nullptr) return;
    if (gen != state(part).gen.load(std::memory_order_acquire)) {
      note_invalidation();
      return;
    }
    Shard& sh = t.shortcut.shard(key);
    {
      LockGuard g(sh.lock);
      ShortcutEntry* e = find(sh.sslots, sh.buckets, key);
      if (e == nullptr) {
        e = pick_slot(sh.sslots, sh.buckets, key);
        if (!e->valid) sh.occupied.fetch_add(1, std::memory_order_relaxed);
      }
      e->key = key;
      e->node = node;
      e->aux = aux;
      e->gen = gen;
      e->partition = part;
      e->host = host;
      e->valid = true;
      e->clock = 1;
    }
    bytes_rec_->record(static_cast<double>(bytes()));
  }

  /// The combiner reported the cached begin reference stale (marked node /
  /// parent-seqnum mismatch): drop it so the next descent refills.
  void erase_shortcut(Key key) {
    Tiers& t = current();
    if (t.shortcut.buckets == 0) return;
    Shard& sh = t.shortcut.shard(key);
    LockGuard g(sh.lock);
    ShortcutEntry* e = find(sh.sslots, sh.buckets, key);
    if (e != nullptr) {
      e->valid = false;
      sh.occupied.fetch_sub(1, std::memory_order_relaxed);
      note_invalidation();
    }
  }

  // ----- failover -----------------------------------------------------------

  std::uint64_t generation(std::uint32_t part) const {
    return (**parts_[part % parts_.size()])
        .gen.load(std::memory_order_acquire);
  }

  /// A host observed the partition bounce (failed_over response): every
  /// entry filled under the old generation — value or shortcut — stops
  /// hitting immediately. Slots are reclaimed lazily by eviction.
  void bump_generation(std::uint32_t part) {
    state(part).gen.fetch_add(1, std::memory_order_acq_rel);
    note_invalidation();
  }

  // ----- knobs (controller / tests) -----------------------------------------
  // Rebuilds drop all entries: correct by construction, and cheap at the
  // controller's hysteresis-limited call rate.

  void set_budget(std::size_t bytes) {
    std::lock_guard<std::mutex> g(rebuild_mu_);
    config_.budget_bytes = bytes;
    budget_bytes_.store(bytes, std::memory_order_relaxed);
    publish(build_tiers(config_));
  }

  void set_value_ratio(double ratio) {
    if (ratio < 0.0) ratio = 0.0;
    if (ratio > 1.0) ratio = 1.0;
    std::lock_guard<std::mutex> g(rebuild_mu_);
    config_.value_ratio = ratio;
    value_ratio_.store(ratio, std::memory_order_relaxed);
    publish(build_tiers(config_));
  }

  std::size_t budget() const {
    return budget_bytes_.load(std::memory_order_relaxed);
  }
  double value_ratio() const {
    return value_ratio_.load(std::memory_order_relaxed);
  }

  /// Occupied entry bytes across both tiers; <= capacity_bytes() <= budget().
  std::size_t bytes() const {
    const Tiers& t = current();
    return t.value.occupied() * sizeof(ValueEntry) +
           t.shortcut.occupied() * sizeof(ShortcutEntry);
  }

  std::size_t capacity_bytes() const {
    const Tiers& t = current();
    return t.value.slots() * sizeof(ValueEntry) +
           t.shortcut.slots() * sizeof(ShortcutEntry);
  }

  std::size_t value_capacity() const { return current().value.slots(); }
  std::size_t shortcut_capacity() const { return current().shortcut.slots(); }

  Stats stats() const {
    Stats s;
    s.value_hits = stat_value_hits_.load(std::memory_order_relaxed);
    s.shortcut_hits = stat_shortcut_hits_.load(std::memory_order_relaxed);
    s.misses = stat_misses_.load(std::memory_order_relaxed);
    s.invalidations = stat_invalidations_.load(std::memory_order_relaxed);
    s.resident_bytes = bytes();
    s.capacity_bytes = capacity_bytes();
    return s;
  }

  static constexpr std::size_t value_entry_bytes() { return sizeof(ValueEntry); }
  static constexpr std::size_t shortcut_entry_bytes() {
    return sizeof(ShortcutEntry);
  }

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kWays = 4;  // bucket associativity

  struct ValueEntry {
    Key key = 0;
    Value value = 0;
    std::uint64_t version = 0;
    std::uint64_t gen = 0;
    std::uint32_t partition = 0;
    bool valid = false;
    std::uint8_t clock = 0;
  };

  struct ShortcutEntry {
    Key key = 0;
    void* node = nullptr;
    std::uint64_t aux = 0;
    std::uint64_t gen = 0;
    void* host = nullptr;  // fat leaf whose seqlock stamp is `aux` (or null)
    std::uint32_t partition = 0;
    bool valid = false;
    std::uint8_t clock = 0;
  };

  class SpinLock {
   public:
    void lock() noexcept {
      while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
    void unlock() noexcept { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_{};
  };

  struct LockGuard {
    explicit LockGuard(SpinLock& l) : lock(l) { lock.lock(); }
    ~LockGuard() { lock.unlock(); }
    SpinLock& lock;
  };

  /// One spinlocked slice of a tier. Entries are only touched under the
  /// lock; `occupied` is relaxed-atomic so bytes()/stats() can read it
  /// without the lock (monitoring, not synchronization).
  struct Shard {
    SpinLock lock;
    std::size_t buckets = 0;  // each kWays wide
    std::vector<ValueEntry> vslots;
    std::vector<ShortcutEntry> sslots;
    std::atomic<std::size_t> occupied{0};
  };

  struct Tier {
    std::vector<std::unique_ptr<util::CacheAligned<Shard>>> shards;
    std::size_t buckets = 0;  // total across shards

    std::size_t slots() const { return buckets * kWays; }
    std::size_t occupied() const {
      std::size_t n = 0;
      for (const auto& sh : shards) {
        n += (**sh).occupied.load(std::memory_order_relaxed);
      }
      return n;
    }
    Shard& shard(Key key) { return **shards[hash(key) % shards.size()]; }
  };

  struct Tiers {
    Tier value;
    Tier shortcut;
  };

  struct PartitionState {
    std::atomic<std::uint64_t> floor{0};
    std::atomic<std::uint64_t> gen{0};
  };

  static std::uint64_t hash(Key key) {
    std::uint64_t x = static_cast<std::uint64_t>(key);
    x += 0x9E3779B97F4A7C15ull;  // splitmix64 finalizer
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  template <typename Entry>
  static Entry* find(std::vector<Entry>& slots, std::size_t buckets, Key key) {
    if (buckets == 0) return nullptr;
    Entry* way = &slots[((hash(key) >> 16) % buckets) * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
      if (way[w].valid && way[w].key == key) return &way[w];
    }
    return nullptr;
  }

  /// Picks the slot a fill for `key` lands in: an invalid way if one exists,
  /// else second-chance within the bucket (first clock==0 way; when every
  /// way is hot, clear their clocks and take way 0).
  template <typename Entry>
  static Entry* pick_slot(std::vector<Entry>& slots, std::size_t buckets,
                          Key key) {
    Entry* way = &slots[((hash(key) >> 16) % buckets) * kWays];
    for (std::size_t w = 0; w < kWays; ++w) {
      if (!way[w].valid) return &way[w];
    }
    for (std::size_t w = 0; w < kWays; ++w) {
      if (way[w].clock == 0) return &way[w];
    }
    for (std::size_t w = 0; w < kWays; ++w) way[w].clock = 0;
    return &way[0];
  }

  Tiers& current() const { return *tiers_.load(std::memory_order_acquire); }

  PartitionState& state(std::uint32_t part) {
    return **parts_[part % parts_.size()];
  }

  void note_invalidation() {
    invalidations_->inc();
    stat_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sizes both tiers from the budget: per-tier slot count floors to whole
  /// buckets so capacity never exceeds the budget; tiny tiers collapse to
  /// zero buckets (tier disabled) rather than over-allocating.
  static Tiers* build_tiers(const Config& config) {
    auto t = std::make_unique<Tiers>();
    const std::size_t vbytes = static_cast<std::size_t>(
        static_cast<double>(config.budget_bytes) * config.value_ratio);
    const std::size_t sbytes =
        config.budget_bytes > vbytes ? config.budget_bytes - vbytes : 0;
    build_tier(t->value, vbytes / sizeof(ValueEntry), /*value_tier=*/true);
    build_tier(t->shortcut, sbytes / sizeof(ShortcutEntry),
               /*value_tier=*/false);
    return t.release();
  }

  static void build_tier(Tier& tier, std::size_t max_slots, bool value_tier) {
    const std::size_t buckets = max_slots / kWays;
    const std::size_t shard_count =
        buckets >= kShards ? kShards : (buckets > 0 ? 1 : 0);
    for (std::size_t s = 0; s < shard_count; ++s) {
      auto shard = std::make_unique<util::CacheAligned<Shard>>();
      Shard& sh = **shard;
      sh.buckets = buckets / shard_count;
      if (value_tier) {
        sh.vslots.assign(sh.buckets * kWays, ValueEntry{});
      } else {
        sh.sslots.assign(sh.buckets * kWays, ShortcutEntry{});
      }
      tier.buckets += sh.buckets;
      tier.shards.push_back(std::move(shard));
    }
  }

  /// Swaps in freshly built tiers; the superseded generation is parked (not
  /// freed) so concurrent readers that already resolved a shard pointer
  /// stay safe. Caller holds rebuild_mu_.
  void publish(Tiers* fresh) {
    Tiers* old = tiers_.exchange(fresh, std::memory_order_acq_rel);
    retired_.emplace_back(old);
  }

  Config config_;  // mutated only under rebuild_mu_
  // Lock-free mirrors of the two knobs for concurrent getters.
  std::atomic<std::size_t> budget_bytes_;
  std::atomic<double> value_ratio_;
  std::atomic<Tiers*> tiers_{nullptr};
  std::mutex rebuild_mu_;
  std::vector<std::unique_ptr<Tiers>> retired_;  // parked until destruction
  // unique_ptr: PartitionState holds atomics, the vector must never move it.
  std::vector<std::unique_ptr<util::CacheAligned<PartitionState>>> parts_;

  // Process-wide telemetry (shared across instances by name) plus per-
  // instance totals for stats()/the controller.
  telemetry::Counter* hits_;
  telemetry::Counter* misses_;
  telemetry::Counter* invalidations_;
  telemetry::LatencyRecorder* bytes_rec_;
  std::atomic<std::uint64_t> stat_value_hits_{0};
  std::atomic<std::uint64_t> stat_shortcut_hits_{0};
  std::atomic<std::uint64_t> stat_misses_{0};
  std::atomic<std::uint64_t> stat_invalidations_{0};
};

}  // namespace hybrids::cache
