// Workload specification and per-thread operation streams.
//
// Reproduces the two workload families of the paper's evaluation:
//   * YCSB core workload C: 100% reads, scrambled-zipfian key choice (§5.1).
//   * Sensitivity mixes X-Y-Z (read-insert-remove percentages) with uniform
//     key choice (§5.2), including the B+ tree variant where insert keys
//     target the last leaf of each NMP partition to force node splits, and
//     the "fully uniform" variant that avoids splits.
//
// Keys are 4 bytes, as in the paper (§3.2 publication-list layout).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hybrids/types.hpp"
#include "hybrids/util/rng.hpp"
#include "hybrids/workload/zipf.hpp"

namespace hybrids::workload {

using hybrids::Key;
using hybrids::Value;

enum class OpType : std::uint8_t { kRead, kUpdate, kInsert, kRemove, kScan };

struct Op {
  OpType type;
  Key key;    // kScan: start key (inclusive)
  Value value;
  std::uint32_t scan_len = 0;  // kScan: number of entries requested
};

/// How keys for read/update/remove operations are chosen.
enum class KeyDist : std::uint8_t {
  kUniform,            // uniform over the initially loaded key set
  kScrambledZipfian,   // YCSB-C: zipfian rank scattered by FNV hash
};

/// How keys for insert operations are chosen.
enum class InsertPattern : std::uint8_t {
  kUniform,        // uniform over unloaded (odd) keys: spreads inserts over
                   // all leaves; in the B+ tree this incurs ~no node splits
  kPartitionTail,  // ascending keys at the tail of each partition's loaded
                   // range: forces the maximum possible number of node
                   // splits while spreading load evenly over partitions
};

/// Maps logical item indices onto the concrete 4-byte key space.
///
/// The key space is divided into `partitions` equal-width ranges (matching
/// the hybrid structures' range partitioning). Within each partition the
/// initially loaded keys are the even offsets 0,2,4,...; odd offsets remain
/// free for uniform inserts, and offsets beyond the loaded region remain
/// free for tail inserts. Width is 4x the per-partition load so tail inserts
/// never spill into the next partition.
class KeyLayout {
 public:
  KeyLayout(std::uint64_t initial_keys, std::uint32_t partitions);

  std::uint64_t initial_keys() const { return initial_keys_; }
  std::uint32_t partitions() const { return partitions_; }
  std::uint64_t per_partition() const { return per_partition_; }
  /// Width of each partition's key range.
  Key partition_width() const { return width_; }
  /// Exclusive upper bound of the key space.
  Key key_space() const { return static_cast<Key>(static_cast<std::uint64_t>(width_) * partitions_); }

  /// The i-th initially loaded key (i in [0, initial_keys)), ascending in i.
  Key key_at(std::uint64_t i) const;
  /// Partition owning `key` under equal-width range partitioning.
  std::uint32_t partition_of(Key key) const;
  /// First free key above the loaded region of partition `p` (tail inserts).
  Key tail_base(std::uint32_t p) const;

  /// All initially loaded keys in ascending order (B+ tree sorted bulk load;
  /// shuffle for skiplist loads if desired).
  std::vector<Key> initial_key_set() const;

 private:
  std::uint64_t initial_keys_;
  std::uint32_t partitions_;
  std::uint64_t per_partition_;
  Key width_;
};

/// Operation mix as fractions; read + update + insert + remove + scan must
/// be ~1.
struct OpMix {
  double read = 1.0;
  double update = 0.0;
  double insert = 0.0;
  double remove = 0.0;
  double scan = 0.0;  // YCSB-E: range scans

  /// "X-Y-Z" naming used in the paper's figures (read-insert-remove %).
  std::string name() const;
};

/// How the requested length of each range scan is chosen (YCSB's
/// maxscanlength / scanlengthdistribution knobs).
enum class ScanLenDist : std::uint8_t {
  kUniform,   // uniform over [1, max_scan_len]
  kZipfian,   // zipfian over [1, max_scan_len]: short scans most common
};

struct WorkloadSpec {
  std::uint64_t initial_keys = 1u << 20;
  std::uint32_t partitions = 8;
  OpMix mix{};
  KeyDist dist = KeyDist::kScrambledZipfian;
  InsertPattern insert_pattern = InsertPattern::kUniform;
  std::uint32_t max_scan_len = 100;  // YCSB-E default maxscanlength
  ScanLenDist scan_len_dist = ScanLenDist::kUniform;
  std::uint64_t seed = 42;
};

/// Per-thread deterministic stream of operations drawn from a WorkloadSpec.
/// Threads with distinct ids produce independent streams; the same (spec,
/// thread_id) pair always produces the same stream.
class OpStream {
 public:
  OpStream(const WorkloadSpec& spec, std::uint32_t thread_id);

  Op next();
  const KeyLayout& layout() const { return layout_; }

 private:
  Key choose_lookup_key();
  Key choose_insert_key();
  std::uint32_t choose_scan_len();

  KeyLayout layout_;
  OpMix mix_;
  KeyDist dist_;
  InsertPattern insert_pattern_;
  ScanLenDist scan_len_dist_;
  std::uint32_t max_scan_len_;
  util::Xoshiro256 rng_;
  ScrambledZipfianGenerator zipf_;
  ZipfianGenerator scan_len_zipf_;  // plain zipfian: short lengths common
  std::vector<Key> tail_next_;  // per-partition next tail-insert key
  std::uint32_t tail_rr_ = 0;   // round-robin partition cursor for tail inserts
};

}  // namespace hybrids::workload
