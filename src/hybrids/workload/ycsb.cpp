#include "hybrids/workload/ycsb.hpp"

namespace hybrids::workload {

namespace {
WorkloadSpec zipfian_preset(std::uint64_t initial_keys, double read,
                            double update, std::uint32_t partitions,
                            std::uint64_t seed) {
  WorkloadSpec spec;
  spec.initial_keys = initial_keys;
  spec.partitions = partitions;
  spec.mix = OpMix{read, update, 0.0, 0.0};
  spec.dist = KeyDist::kScrambledZipfian;
  spec.seed = seed;
  return spec;
}
}  // namespace

WorkloadSpec ycsb_c(std::uint64_t initial_keys, std::uint32_t partitions,
                    std::uint64_t seed) {
  return zipfian_preset(initial_keys, 1.0, 0.0, partitions, seed);
}

WorkloadSpec ycsb_b(std::uint64_t initial_keys, std::uint32_t partitions,
                    std::uint64_t seed) {
  return zipfian_preset(initial_keys, 0.95, 0.05, partitions, seed);
}

WorkloadSpec ycsb_a(std::uint64_t initial_keys, std::uint32_t partitions,
                    std::uint64_t seed) {
  return zipfian_preset(initial_keys, 0.5, 0.5, partitions, seed);
}

WorkloadSpec ycsb_e(std::uint64_t initial_keys, std::uint32_t partitions,
                    std::uint64_t seed, std::uint32_t max_scan_len) {
  WorkloadSpec spec;
  spec.initial_keys = initial_keys;
  spec.partitions = partitions;
  spec.mix = OpMix{0.0, 0.0, 0.05, 0.0, 0.95};
  spec.dist = KeyDist::kScrambledZipfian;
  spec.insert_pattern = InsertPattern::kUniform;
  spec.max_scan_len = max_scan_len;
  spec.scan_len_dist = ScanLenDist::kZipfian;
  spec.seed = seed;
  return spec;
}

WorkloadSpec sensitivity(std::uint64_t initial_keys, int read_pct,
                         int insert_pct, int remove_pct, bool split_heavy,
                         std::uint32_t partitions, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.initial_keys = initial_keys;
  spec.partitions = partitions;
  spec.mix = OpMix{read_pct / 100.0, 0.0, insert_pct / 100.0, remove_pct / 100.0};
  spec.dist = KeyDist::kUniform;
  spec.insert_pattern =
      split_heavy ? InsertPattern::kPartitionTail : InsertPattern::kUniform;
  spec.seed = seed;
  return spec;
}

}  // namespace hybrids::workload
