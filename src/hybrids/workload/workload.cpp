#include "hybrids/workload/workload.hpp"

#include <cassert>
#include <cstdio>

namespace hybrids::workload {

KeyLayout::KeyLayout(std::uint64_t initial_keys, std::uint32_t partitions)
    : initial_keys_(initial_keys), partitions_(partitions) {
  assert(partitions_ > 0);
  per_partition_ = (initial_keys_ + partitions_ - 1) / partitions_;
  // Even offsets 0..2*per_partition hold loaded keys; another 2x headroom
  // for tail inserts. Must fit in 32 bits.
  const std::uint64_t width = 4 * per_partition_;
  assert(width * partitions_ <= (1ull << 32));
  width_ = static_cast<Key>(width);
}

Key KeyLayout::key_at(std::uint64_t i) const {
  assert(i < initial_keys_);
  const std::uint64_t p = i / per_partition_;
  const std::uint64_t off = i % per_partition_;
  return static_cast<Key>(p * width_ + 2 * off);
}

std::uint32_t KeyLayout::partition_of(Key key) const {
  const auto p = static_cast<std::uint32_t>(key / width_);
  return p >= partitions_ ? partitions_ - 1 : p;
}

Key KeyLayout::tail_base(std::uint32_t p) const {
  // One past the highest loaded (even) offset in partition p.
  return static_cast<Key>(static_cast<std::uint64_t>(p) * width_ + 2 * per_partition_);
}

std::vector<Key> KeyLayout::initial_key_set() const {
  std::vector<Key> keys;
  keys.reserve(initial_keys_);
  for (std::uint64_t i = 0; i < initial_keys_; ++i) keys.push_back(key_at(i));
  return keys;
}

std::string OpMix::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%d-%d-%d", static_cast<int>(read * 100 + 0.5),
                static_cast<int>(insert * 100 + 0.5),
                static_cast<int>(remove * 100 + 0.5));
  return buf;
}

OpStream::OpStream(const WorkloadSpec& spec, std::uint32_t thread_id)
    : layout_(spec.initial_keys, spec.partitions),
      mix_(spec.mix),
      dist_(spec.dist),
      insert_pattern_(spec.insert_pattern),
      scan_len_dist_(spec.scan_len_dist),
      max_scan_len_(spec.max_scan_len > 0 ? spec.max_scan_len : 1),
      rng_(spec.seed * 0x9E3779B97F4A7C15ULL + thread_id + 1),
      zipf_(spec.initial_keys),
      scan_len_zipf_(max_scan_len_) {
  tail_next_.reserve(spec.partitions);
  for (std::uint32_t p = 0; p < spec.partitions; ++p) {
    // Offset each thread's tail stream so threads do not collide on the
    // exact same insert key; collisions would turn inserts into no-ops.
    tail_next_.push_back(static_cast<Key>(layout_.tail_base(p) + thread_id));
  }
  tail_rr_ = thread_id % spec.partitions;
}

Key OpStream::choose_lookup_key() {
  std::uint64_t index;
  if (dist_ == KeyDist::kScrambledZipfian) {
    index = zipf_.next(rng_);
  } else {
    index = rng_.next_below(layout_.initial_keys());
  }
  return layout_.key_at(index);
}

Key OpStream::choose_insert_key() {
  if (insert_pattern_ == InsertPattern::kPartitionTail) {
    // Round-robin across partitions (paper: insertions evenly distributed
    // across NMP partitions, each targeting the partition's last leaf).
    const std::uint32_t p = tail_rr_;
    tail_rr_ = (tail_rr_ + 1) % layout_.partitions();
    const Key k = tail_next_[p];
    // Stride by a large-ish amount so concurrent threads interleave; 64 keeps
    // keys within the partition's headroom for realistic run lengths.
    tail_next_[p] = static_cast<Key>(k + 64);
    // Wrap within the partition headroom to keep long runs in range.
    const Key base = layout_.tail_base(p);
    const Key limit = static_cast<Key>((static_cast<std::uint64_t>(p) + 1) * layout_.partition_width());
    if (tail_next_[p] >= limit) tail_next_[p] = static_cast<Key>(base + (tail_next_[p] - limit) % 64 + 1);
    return k < limit ? k : base;
  }
  // Uniform: odd keys inside the loaded region spread over all leaves.
  const std::uint64_t index = rng_.next_below(layout_.initial_keys());
  return static_cast<Key>(layout_.key_at(index) + 1);
}

std::uint32_t OpStream::choose_scan_len() {
  if (scan_len_dist_ == ScanLenDist::kZipfian) {
    // Rank 0 (the most popular) maps to the shortest scan, YCSB-style.
    return static_cast<std::uint32_t>(scan_len_zipf_.next(rng_)) + 1;
  }
  return static_cast<std::uint32_t>(rng_.next_below(max_scan_len_)) + 1;
}

Op OpStream::next() {
  const double r = rng_.next_double();
  if (r < mix_.read) {
    return {OpType::kRead, choose_lookup_key(), 0};
  }
  if (r < mix_.read + mix_.update) {
    return {OpType::kUpdate, choose_lookup_key(),
            static_cast<Value>(rng_.next())};
  }
  if (r < mix_.read + mix_.update + mix_.insert) {
    return {OpType::kInsert, choose_insert_key(),
            static_cast<Value>(rng_.next())};
  }
  if (r < mix_.read + mix_.update + mix_.insert + mix_.scan) {
    return {OpType::kScan, choose_lookup_key(), 0, choose_scan_len()};
  }
  return {OpType::kRemove, choose_lookup_key(), 0};
}

}  // namespace hybrids::workload
