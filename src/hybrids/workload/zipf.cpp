#include "hybrids/workload/zipf.hpp"

#include <cmath>

namespace hybrids::workload {

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zeta2theta_ = zeta(2, theta_);
  zetan_ = zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::next(util::Xoshiro256& rng) {
  // YCSB's nextLong(): inverse-CDF approximation from Gray et al.
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(std::uint64_t n)
    : n_(n), zipf_(n, ZipfianGenerator::kDefaultTheta) {}

std::uint64_t ScrambledZipfianGenerator::next(util::Xoshiro256& rng) {
  const std::uint64_t rank = zipf_.next(rng);
  return util::fnv1a64(rank) % n_;
}

}  // namespace hybrids::workload
