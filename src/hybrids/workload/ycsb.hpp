// Preset workload specifications used across the paper's evaluation.
#pragma once

#include "hybrids/workload/workload.hpp"

namespace hybrids::workload {

/// YCSB core workload C: 100% reads, zipfian request distribution. This is
/// the baseline workload of §5.1 (Figures 5 and 6).
WorkloadSpec ycsb_c(std::uint64_t initial_keys, std::uint32_t partitions = 8,
                    std::uint64_t seed = 42);

/// YCSB core workload B: 95% reads / 5% updates, zipfian.
WorkloadSpec ycsb_b(std::uint64_t initial_keys, std::uint32_t partitions = 8,
                    std::uint64_t seed = 42);

/// YCSB core workload A: 50% reads / 50% updates, zipfian.
WorkloadSpec ycsb_a(std::uint64_t initial_keys, std::uint32_t partitions = 8,
                    std::uint64_t seed = 42);

/// YCSB core workload E: 95% range scans / 5% inserts. Scan start keys are
/// scrambled-zipfian; scan lengths are zipfian over [1, max_scan_len]
/// (YCSB's scanlengthdistribution=zipfian, short scans most common).
/// Inserts use the uniform pattern (odd keys inside the loaded region).
WorkloadSpec ycsb_e(std::uint64_t initial_keys, std::uint32_t partitions = 8,
                    std::uint64_t seed = 42, std::uint32_t max_scan_len = 100);

/// Sensitivity mix "X-Y-Z" of §5.2: X% reads, Y% inserts, Z% removes with
/// uniformly distributed keys. `split_heavy` selects the B+ tree insert
/// pattern that targets the last leaf of each NMP partition (maximum node
/// splits, Figure 8); false gives the "fully uniform" variant (no splits).
WorkloadSpec sensitivity(std::uint64_t initial_keys, int read_pct,
                         int insert_pct, int remove_pct,
                         bool split_heavy = false,
                         std::uint32_t partitions = 8,
                         std::uint64_t seed = 42);

}  // namespace hybrids::workload
