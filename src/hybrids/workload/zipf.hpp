// YCSB-compatible key-distribution generators.
//
// The paper's baseline evaluation uses YCSB core workload C (zipfian request
// distribution, theta = 0.99); the sensitivity study uses uniform keys. We
// implement the generators exactly as in the YCSB reference implementation
// (Cooper et al., SoCC'10; zeta computed incrementally per Gray et al.,
// "Quickly generating billion-record synthetic databases", SIGMOD'94).
#pragma once

#include <cstdint>

#include "hybrids/util/rng.hpp"

namespace hybrids::workload {

/// Zipfian-distributed integers in [0, n): item rank r is drawn with
/// probability proportional to 1 / r^theta. Popular items are the *smallest*
/// values; use ScrambledZipfianGenerator to spread the hot set over the
/// whole key space (what YCSB workloads actually do).
class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianGenerator(std::uint64_t n, double theta = kDefaultTheta);

  std::uint64_t next(util::Xoshiro256& rng);

  std::uint64_t item_count() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Zipfian over [0, n) with the hot items scattered by an FNV hash, matching
/// YCSB's ScrambledZipfianGenerator (which fixes theta at 0.99).
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(std::uint64_t n);

  std::uint64_t next(util::Xoshiro256& rng);

  std::uint64_t item_count() const { return n_; }

 private:
  std::uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace hybrids::workload
