#include "hybrids/telemetry/registry.hpp"

namespace hybrids::telemetry {

std::uint64_t Snapshot::counter_total(std::string_view name) const {
  std::uint64_t sum = 0;
  for (const auto& c : counters) {
    if (c.name == name) sum += c.value;
  }
  return sum;
}

util::Histogram Snapshot::histogram_total(std::string_view name) const {
  util::Histogram merged;
  for (const auto& h : histograms) {
    if (h.name == name) merged.merge(h.hist);
  }
  return merged;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name, std::int32_t partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{std::string(name), partition}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyRecorder& Registry::latency(std::string_view name,
                                   std::int32_t partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[Key{std::string(name), partition}];
  if (!slot) slot = std::make_unique<LatencyRecorder>();
  return *slot;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.taken_ns = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    snap.counters.push_back(CounterSample{key.first, key.second, c->value()});
  }
  snap.histograms.reserve(latencies_.size());
  for (const auto& [key, h] : latencies_) {
    snap.histograms.push_back(
        HistogramSample{key.first, key.second, h->snapshot()});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, h] : latencies_) h->reset();
}

}  // namespace hybrids::telemetry
