// Process-wide metric registry.
//
// Instruments are registered by (name, scope) where scope is either a
// partition id (per-NMP-partition metrics) or kGlobal (host-level metrics).
// Registration takes a lock and is meant for construction time; hot paths
// hold the returned reference, which stays valid for the process lifetime.
//
// Canonical metric names are declared in `names` below so the runtime, the
// simulator transport, and the exporters agree on spelling. The reference
// catalogue (kind, unit, layer, when each fires) is docs/METRICS.md;
// tests/metrics_doc_test.cpp keeps it consistent with this header.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hybrids/telemetry/counters.hpp"

namespace hybrids::telemetry {

namespace names {
// Partition scope (one instrument per NMP partition/core).
inline constexpr const char* kServedTotal = "served_total";
inline constexpr const char* kServedPrefix = "served_";  // + opcode name
inline constexpr const char* kRetryStaleBeginNode = "retry_stale_begin_node";
inline constexpr const char* kRetryParentSeqnum = "retry_parent_seqnum";
inline constexpr const char* kBeginFromHead = "begin_from_head";
inline constexpr const char* kParkTotal = "park_total";
inline constexpr const char* kWakeTotal = "wake_total";
inline constexpr const char* kQueueWaitNs = "queue_wait_ns";
inline constexpr const char* kServiceNs = "service_ns";
inline constexpr const char* kScanOccupancy = "scan_occupancy";
inline constexpr const char* kCombinerBatch = "combiner_batch";
inline constexpr const char* kBatchSize = "nmp.batch_size";
inline constexpr const char* kBatchFingerHits = "nmp.batch_finger_hits";
inline constexpr const char* kScanLen = "nmp.scan_len";
inline constexpr const char* kWaitTimeoutTotal = "wait_timeout_total";
inline constexpr const char* kWatchdogFired = "watchdog_fired";
inline constexpr const char* kPartitionDegraded = "partition_degraded";
inline constexpr const char* kPartitionFailover = "partition_failover";
inline constexpr const char* kPartitionRecovered = "partition_recovered";
inline constexpr const char* kFailoverBouncedOps = "failover_bounced_ops";
inline constexpr const char* kTraceQueueWaitNs = "trace.queue_wait_ns";
inline constexpr const char* kTraceServiceNs = "trace.service_ns";
// Global scope (host side).
inline constexpr const char* kOffloadPosted = "host.offload_posted";
inline constexpr const char* kCallBlocking = "host.call_blocking";
inline constexpr const char* kCallAsync = "host.call_async";
inline constexpr const char* kAsyncRejected = "host.async_rejected";
inline constexpr const char* kAsyncInflight = "host.async_inflight";
inline constexpr const char* kHostReadHits = "host.read_hits";
inline constexpr const char* kHostRetryTotal = "host.retry_total";
inline constexpr const char* kLockPathTotal = "host.lock_path_total";
inline constexpr const char* kResumeInsertTotal = "host.resume_insert_total";
inline constexpr const char* kUnlockPathTotal = "host.unlock_path_total";
inline constexpr const char* kRetryBudgetExhausted = "host.retry_budget_exhausted";
inline constexpr const char* kScanPartitionHops = "host.scan_partition_hops";
inline constexpr const char* kScanRetry = "host.scan_retry";
inline constexpr const char* kInterleaveDepth = "host.interleave_depth";
inline constexpr const char* kInterleaveYields = "host.interleave_yields";
inline constexpr const char* kInterleaveFallbackWaits = "host.interleave_fallback_waits";
inline constexpr const char* kHostNodeKeysScanned = "host.node_keys_scanned";
inline constexpr const char* kMemArenaBytes = "mem.arena_bytes";
inline constexpr const char* kMemPoolRecycled = "mem.pool_recycled";
inline constexpr const char* kMemPoolShardMisses = "mem.pool_shard_misses";
inline constexpr const char* kMemFatnodeSplits = "mem.fatnode_splits";
inline constexpr const char* kCacheHits = "cache.hits";
inline constexpr const char* kCacheMisses = "cache.misses";
inline constexpr const char* kCacheBytes = "cache.bytes";
inline constexpr const char* kCacheInvalidations = "cache.invalidations";
inline constexpr const char* kTraceSampledOps = "trace.sampled_ops";
inline constexpr const char* kTraceDroppedEvents = "trace.dropped_events";
inline constexpr const char* kFaultInjectedPrefix = "fault_injected_";  // + kind
}  // namespace names

struct CounterSample {
  std::string name;
  std::int32_t partition;  // Registry::kGlobal for host-level metrics
  std::uint64_t value;
};

struct HistogramSample {
  std::string name;
  std::int32_t partition;
  util::Histogram hist;
};

/// Point-in-time copy of every registered instrument.
struct Snapshot {
  std::uint64_t taken_ns = 0;  // now_ns() at snapshot time
  std::vector<CounterSample> counters;     // sorted by (name, partition)
  std::vector<HistogramSample> histograms; // sorted by (name, partition)

  /// Sum of `name` across every scope it is registered under.
  std::uint64_t counter_total(std::string_view name) const;
  /// Merge of `name` across every scope it is registered under.
  util::Histogram histogram_total(std::string_view name) const;
};

class Registry {
 public:
  static constexpr std::int32_t kGlobal = -1;

  /// The process-wide registry used by all instrumentation.
  static Registry& global();

  /// Returns (registering on first use) the instrument for (name, scope).
  Counter& counter(std::string_view name, std::int32_t partition = kGlobal);
  LatencyRecorder& latency(std::string_view name,
                           std::int32_t partition = kGlobal);

  Snapshot snapshot() const;

  /// Zeroes every instrument. Quiescent-only; intended for tests and for
  /// benches that reset between warmup and the measured phase.
  void reset();

 private:
  using Key = std::pair<std::string, std::int32_t>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<LatencyRecorder>> latencies_;
};

/// Shorthands for the global registry.
inline Counter& counter(std::string_view name,
                        std::int32_t partition = Registry::kGlobal) {
  return Registry::global().counter(name, partition);
}
inline LatencyRecorder& latency(std::string_view name,
                                std::int32_t partition = Registry::kGlobal) {
  return Registry::global().latency(name, partition);
}
inline Snapshot snapshot() { return Registry::global().snapshot(); }
inline void reset_all() { Registry::global().reset(); }

}  // namespace hybrids::telemetry
