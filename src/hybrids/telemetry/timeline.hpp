// Periodic snapshotting: a background reporter thread that delivers
// registry snapshots to a sink at a fixed interval, and a Timeline that
// accumulates them for post-run export (the `--stats-interval=MS` bench
// flag wires one to stderr).
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hybrids/telemetry/registry.hpp"

namespace hybrids::telemetry {

/// Append-only series of snapshots (thread-safe).
class Timeline {
 public:
  void append(Snapshot snap);
  std::size_t size() const;
  /// Copy of the series so far.
  std::vector<Snapshot> entries() const;

 private:
  mutable std::mutex mu_;
  std::vector<Snapshot> entries_;
};

/// Background thread that snapshots the global registry every `interval`
/// and hands the snapshot to `sink`. A final snapshot is delivered on
/// stop()/destruction so short runs still produce at least one sample.
/// With HYBRIDS_NO_TELEMETRY the thread still runs but snapshots are empty.
class PeriodicReporter {
 public:
  using Sink = std::function<void(const Snapshot&)>;

  PeriodicReporter(std::chrono::milliseconds interval, Sink sink);
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops the reporter thread after delivering one final snapshot.
  /// Idempotent.
  void stop();

 private:
  void run();

  std::chrono::milliseconds interval_;
  Sink sink_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace hybrids::telemetry
