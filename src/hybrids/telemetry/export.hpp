// Machine-readable exporters for telemetry snapshots.
//
// JSON layout (schema "hybrids.telemetry.v1"):
//   {
//     "schema": "hybrids.telemetry.v1",
//     "taken_ns": <now_ns() at snapshot time>,
//     "counters":   { "<name>": <value>, ... },      // global-scope
//     "histograms": { "<name>": {<hist>}, ... },     // global-scope
//     "totals": {                                    // summed/merged over
//       "counters":   { "served_total": ..., ... },  // all partitions
//       "histograms": { "queue_wait_ns": {...}, ... }
//     },
//     "partitions": [
//       { "partition": 0,
//         "counters":   { "served_total": ..., "retry_stale_begin_node": ... },
//         "histograms": { "queue_wait_ns": {...}, ... } },
//       ...
//     ]
//   }
// where <hist> is {"count","sum","mean","min","max","p50","p90","p99","p999",
// "buckets":[{"le":...,"count":...}, ...]} (non-empty buckets only).
//
// CSV layout: one row per instrument,
//   type,name,partition,value,count,sum,mean,min,max,p50,p90,p99,p999
// (counters fill `value`, histograms fill the rest; partition is empty for
// global-scope metrics). The series form (--stats-series) prepends a `t_ms`
// wall-clock column — milliseconds since the first snapshot — and repeats
// the per-instrument rows for every snapshot in the timeline.
#pragma once

#include <string>
#include <vector>

#include "hybrids/telemetry/registry.hpp"

namespace hybrids::telemetry {

std::string to_json(const Snapshot& snap);
std::string to_csv(const Snapshot& snap);

/// Timeline CSV: same columns as to_csv() behind a leading `t_ms` column,
/// one block of rows per snapshot.
std::string series_to_csv(const std::vector<Snapshot>& series);

/// One-line human summary (periodic reporters / log lines).
std::string one_line_summary(const Snapshot& snap);

/// Like one_line_summary, but reports the interval since `prev` instead of
/// run-cumulative values: counter deltas (with a served-ops/s rate) and
/// interval-local queue-wait quantiles (--stats-delta).
std::string one_line_delta_summary(const Snapshot& prev, const Snapshot& cur);

/// Snapshot the global registry and write it to `path`. Returns false (and
/// leaves no partial file behind semantics aside) if the file cannot be
/// opened or written.
bool export_json(const std::string& path);
bool export_csv(const std::string& path);

/// Write a timeline's snapshots as series CSV (see series_to_csv).
bool export_series_csv(const std::vector<Snapshot>& series,
                       const std::string& path);

}  // namespace hybrids::telemetry
