#include "hybrids/telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hybrids::telemetry {

namespace {

/// JSON has no NaN/Inf literals; degenerate statistics export as 0.
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

void append_number(std::ostringstream& os, double v) {
  v = finite(v);
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os.precision(17);
    os << v;
  }
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_histogram(std::ostringstream& os, const util::Histogram& h) {
  os << "{\"count\":" << h.count();
  os << ",\"sum\":"; append_number(os, h.sum());
  os << ",\"mean\":"; append_number(os, h.mean());
  os << ",\"min\":"; append_number(os, h.min());
  os << ",\"max\":"; append_number(os, h.max());
  os << ",\"p50\":"; append_number(os, h.quantile(0.5));
  os << ",\"p90\":"; append_number(os, h.quantile(0.9));
  os << ",\"p99\":"; append_number(os, h.quantile(0.99));
  os << ",\"p999\":"; append_number(os, h.quantile(0.999));
  os << ",\"buckets\":[";
  bool first = true;
  const auto& buckets = h.bucket_counts();
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    if (buckets[static_cast<std::size_t>(i)] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"le\":"; append_number(os, util::Histogram::bucket_upper(i));
    os << ",\"count\":" << buckets[static_cast<std::size_t>(i)] << '}';
  }
  os << "]}";
}

template <typename Samples, typename Emit>
void append_object(std::ostringstream& os, const Samples& samples,
                   std::int32_t partition, Emit emit) {
  os << '{';
  bool first = true;
  for (const auto& s : samples) {
    if (s.partition != partition) continue;
    if (!first) os << ',';
    first = false;
    append_escaped(os, s.name);
    os << ':';
    emit(s);
  }
  os << '}';
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::ostringstream os;
  os << "{\"schema\":\"hybrids.telemetry.v1\"";
  os << ",\"taken_ns\":" << snap.taken_ns;

  // Global-scope instruments.
  os << ",\"counters\":";
  append_object(os, snap.counters, Registry::kGlobal,
                [&](const CounterSample& s) { os << s.value; });
  os << ",\"histograms\":";
  append_object(os, snap.histograms, Registry::kGlobal,
                [&](const HistogramSample& s) { append_histogram(os, s.hist); });

  // Partition-scope instruments, summed/merged across partitions.
  std::map<std::string, std::uint64_t> counter_totals;
  std::map<std::string, util::Histogram> hist_totals;
  std::set<std::int32_t> partitions;
  for (const auto& c : snap.counters) {
    if (c.partition == Registry::kGlobal) continue;
    counter_totals[c.name] += c.value;
    partitions.insert(c.partition);
  }
  for (const auto& h : snap.histograms) {
    if (h.partition == Registry::kGlobal) continue;
    hist_totals[h.name].merge(h.hist);
    partitions.insert(h.partition);
  }
  os << ",\"totals\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counter_totals) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, name);
    os << ':' << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : hist_totals) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, name);
    os << ':';
    append_histogram(os, hist);
  }
  os << "}}";

  // Per-partition breakdown.
  os << ",\"partitions\":[";
  first = true;
  for (std::int32_t p : partitions) {
    if (!first) os << ',';
    first = false;
    os << "{\"partition\":" << p << ",\"counters\":";
    append_object(os, snap.counters, p,
                  [&](const CounterSample& s) { os << s.value; });
    os << ",\"histograms\":";
    append_object(os, snap.histograms, p, [&](const HistogramSample& s) {
      append_histogram(os, s.hist);
    });
    os << '}';
  }
  os << "]}";
  return os.str();
}

namespace {

constexpr const char* kCsvColumns =
    "type,name,partition,value,count,sum,mean,min,max,p50,p90,p99,p999";

/// One row per instrument; `row_prefix` is empty for single-snapshot CSV and
/// "<t_ms>," for the series form.
void append_csv_rows(std::ostringstream& os, const Snapshot& snap,
                     const std::string& row_prefix) {
  auto partition_field = [](std::int32_t p) {
    return p == Registry::kGlobal ? std::string{} : std::to_string(p);
  };
  for (const auto& c : snap.counters) {
    os << row_prefix << "counter," << c.name << ','
       << partition_field(c.partition) << ',' << c.value << ",,,,,,,,,\n";
  }
  for (const auto& h : snap.histograms) {
    os << row_prefix << "histogram," << h.name << ','
       << partition_field(h.partition) << ",," << h.hist.count() << ','
       << finite(h.hist.sum()) << ',' << finite(h.hist.mean()) << ','
       << finite(h.hist.min()) << ',' << finite(h.hist.max()) << ','
       << finite(h.hist.quantile(0.5)) << ','
       << finite(h.hist.quantile(0.9)) << ','
       << finite(h.hist.quantile(0.99)) << ','
       << finite(h.hist.quantile(0.999)) << '\n';
  }
}

}  // namespace

std::string to_csv(const Snapshot& snap) {
  std::ostringstream os;
  os << kCsvColumns << '\n';
  append_csv_rows(os, snap, std::string{});
  return os.str();
}

std::string series_to_csv(const std::vector<Snapshot>& series) {
  std::ostringstream os;
  os << "t_ms," << kCsvColumns << '\n';
  const std::uint64_t t0 = series.empty() ? 0 : series.front().taken_ns;
  for (const auto& snap : series) {
    std::ostringstream prefix;
    const std::uint64_t dt =
        snap.taken_ns >= t0 ? snap.taken_ns - t0 : 0;  // now_ns is monotonic
    prefix << static_cast<double>(dt) / 1e6 << ',';
    append_csv_rows(os, snap, prefix.str());
  }
  return os.str();
}

std::string one_line_summary(const Snapshot& snap) {
  std::ostringstream os;
  os << "[telemetry] served=" << snap.counter_total(names::kServedTotal)
     << " posted=" << snap.counter_total(names::kOffloadPosted)
     << " stale_retries=" << snap.counter_total(names::kRetryStaleBeginNode)
     << " seq_retries=" << snap.counter_total(names::kRetryParentSeqnum);
  const util::Histogram qw = snap.histogram_total(names::kQueueWaitNs);
  if (qw.count() > 0) {
    os << " queue_wait_ns{p50=" << finite(qw.quantile(0.5))
       << ",p99=" << finite(qw.quantile(0.99))
       << ",p99.9=" << finite(qw.quantile(0.999)) << '}';
  }
  return os.str();
}

std::string one_line_delta_summary(const Snapshot& prev, const Snapshot& cur) {
  std::ostringstream os;
  auto delta = [&](const char* name) {
    const std::uint64_t now = cur.counter_total(name);
    const std::uint64_t before = prev.counter_total(name);
    return now > before ? now - before : 0;
  };
  const std::uint64_t served = delta(names::kServedTotal);
  os << "[telemetry delta] served=" << served;
  if (cur.taken_ns > prev.taken_ns && served > 0) {
    const double dt_s =
        static_cast<double>(cur.taken_ns - prev.taken_ns) / 1e9;
    os << " (" << static_cast<std::uint64_t>(
                      static_cast<double>(served) / dt_s)
       << "/s)";
  }
  os << " posted=" << delta(names::kOffloadPosted)
     << " stale_retries=" << delta(names::kRetryStaleBeginNode)
     << " seq_retries=" << delta(names::kRetryParentSeqnum);
  const util::Histogram qw =
      cur.histogram_total(names::kQueueWaitNs)
          .delta_since(prev.histogram_total(names::kQueueWaitNs));
  if (qw.count() > 0) {
    os << " queue_wait_ns{p50=" << finite(qw.quantile(0.5))
       << ",p99=" << finite(qw.quantile(0.99))
       << ",p99.9=" << finite(qw.quantile(0.999)) << '}';
  }
  return os.str();
}

namespace {
bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content << '\n';
  return static_cast<bool>(out.flush());
}
}  // namespace

bool export_json(const std::string& path) {
  return write_file(path, to_json(snapshot()));
}

bool export_csv(const std::string& path) {
  return write_file(path, to_csv(snapshot()));
}

bool export_series_csv(const std::vector<Snapshot>& series,
                       const std::string& path) {
  // series_to_csv already ends with '\n' per row; write_file appends one
  // more, which CSV readers ignore.
  return write_file(path, series_to_csv(series));
}

}  // namespace hybrids::telemetry
