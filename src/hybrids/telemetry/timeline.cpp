#include "hybrids/telemetry/timeline.hpp"

#include <utility>

namespace hybrids::telemetry {

void Timeline::append(Snapshot snap) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(snap));
}

std::size_t Timeline::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<Snapshot> Timeline::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

PeriodicReporter::PeriodicReporter(std::chrono::milliseconds interval,
                                   Sink sink)
    : interval_(interval), sink_(std::move(sink)) {
  thread_ = std::thread([this] { run(); });
}

PeriodicReporter::~PeriodicReporter() { stop(); }

void PeriodicReporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicReporter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    sink_(snapshot());
    lock.lock();
  }
  lock.unlock();
  sink_(snapshot());  // final sample at shutdown
}

}  // namespace hybrids::telemetry
