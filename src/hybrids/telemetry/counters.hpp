// Telemetry primitives: cache-aligned, sharded-per-thread counters and
// histogram-backed latency recorders.
//
// Both are safe for concurrent writers and can be snapshotted without
// stopping them: a Counter is a set of per-shard relaxed atomics summed at
// read time; a LatencyRecorder stripes a util::Histogram per shard behind a
// tiny per-shard spinlock that writers of *other* shards never touch.
//
// Cost model: with telemetry enabled, Counter::add is a single relaxed
// fetch_add on a thread-private cache line; LatencyRecorder::record is an
// uncontended spinlock acquire plus a histogram bucket bump. Compiling with
// -DHYBRIDS_NO_TELEMETRY turns every mutation into a no-op (and now_ns()
// into a constant) so instrumented hot paths carry zero overhead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "hybrids/util/cache_aligned.hpp"
#include "hybrids/util/histogram.hpp"

namespace hybrids::telemetry {

#if defined(HYBRIDS_NO_TELEMETRY)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic wall-clock in nanoseconds (0 when telemetry is compiled out).
inline std::uint64_t now_ns() noexcept {
#if defined(HYBRIDS_NO_TELEMETRY)
  return 0;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Stable small integer id for the calling thread, assigned on first use;
/// used to pick a shard. Ids are never reused, so long-lived processes with
/// thread churn still spread load (modulo shard count).
unsigned this_thread_ordinal() noexcept;

#if defined(HYBRIDS_NO_TELEMETRY)

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  void inc() noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class LatencyRecorder {
 public:
  void record(double) noexcept {}
  util::Histogram snapshot() const { return {}; }
  void reset() noexcept {}
};

#else  // telemetry enabled

/// Monotone event counter, sharded to keep concurrent writers off each
/// other's cache lines. value() is a sum over shards and is only guaranteed
/// to include increments that happened-before the call (relaxed ordering).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[this_thread_ordinal() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : cells_) sum += c.value.load(std::memory_order_relaxed);
    return sum;
  }

  /// Quiescent-only (concurrent adds may survive a reset).
  void reset() noexcept {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr unsigned kShards = 16;
  struct alignas(util::kCacheLineSize) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[kShards];
};

/// Value-distribution recorder (latencies, batch sizes, occupancies).
/// Each shard's histogram sits behind a per-shard spinlock: a writer only
/// ever takes its own shard's lock (uncontended in steady state), so
/// snapshot() can walk the shards while other threads keep recording.
class LatencyRecorder {
 public:
  void record(double value) noexcept {
    Shard& s = shards_[this_thread_ordinal() % kShards];
    s.acquire();
    s.hist.record(value);
    s.release();
  }

  /// Merged copy of all shards. Each shard is copied under its lock, so the
  /// result is a union of internally-consistent per-shard histograms (no
  /// torn count/sum pairs).
  util::Histogram snapshot() const {
    util::Histogram merged;
    for (const auto& s : shards_) {
      s.acquire();
      util::Histogram copy = s.hist;
      s.release();
      merged.merge(copy);
    }
    return merged;
  }

  /// Quiescent-only.
  void reset() noexcept {
    for (auto& s : shards_) {
      s.acquire();
      s.hist = util::Histogram{};
      s.release();
    }
  }

 private:
  static constexpr unsigned kShards = 8;
  struct alignas(util::kCacheLineSize) Shard {
    mutable std::atomic<bool> locked{false};
    util::Histogram hist;

    void acquire() const noexcept {
      while (locked.exchange(true, std::memory_order_acquire)) {
        // Owner holds it for a handful of instructions; just respin.
      }
    }
    void release() const noexcept {
      locked.store(false, std::memory_order_release);
    }
  };
  Shard shards_[kShards];
};

#endif  // HYBRIDS_NO_TELEMETRY

}  // namespace hybrids::telemetry
