#include "hybrids/telemetry/counters.hpp"

namespace hybrids::telemetry {

unsigned this_thread_ordinal() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace hybrids::telemetry
